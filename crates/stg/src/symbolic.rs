//! The symbolic state-space backend (§2.2).
//!
//! Reachability is computed by `petri::symbolic`'s BDD fixed-point
//! traversal instead of explicit breadth-first search; the reachable
//! markings are then decoded from the characteristic function, numbered
//! (initial marking first, then BDD enumeration order) and annotated with
//! binary signal codes by the same consistency-checking propagation the
//! explicit builder uses. Synthesis stages consume the result through the
//! [`StateSpace`] trait and cannot tell the backends apart — which is
//! exactly what the backend-parity tests assert.

use std::collections::HashMap;
use std::sync::OnceLock;

use bdd::{Bdd, Manager};
use petri::reach::ReachError;
use petri::symbolic::{current_var, symbolic_reachability_bounded_in, unsafe_witness_in};
use petri::{Marking, PetriNet, TransitionId, TransitionSystem};

use crate::model::Stg;
use crate::state_graph::{infer_initial_values, propagate_codes, SgState, StgError};
use crate::state_space::{Backend, StateSpace};

/// Statistics of the symbolic traversal that produced a state space.
#[derive(Debug, Clone, Copy)]
pub struct SymbolicStats {
    /// Number of reachable markings counted on the BDD.
    pub num_markings: u128,
    /// Image-computation iterations until the fixed point.
    pub iterations: usize,
    /// Nodes allocated in the BDD manager.
    pub bdd_nodes: usize,
}

/// A state space built by BDD-based symbolic traversal.
#[derive(Debug, Clone)]
pub struct SymbolicStateSpace {
    states: Vec<SgState>,
    ts: TransitionSystem<TransitionId>,
    initial_values: Vec<bool>,
    num_signals: usize,
    stats: SymbolicStats,
    /// Lazily built code → states index (the `states_with_code` fast
    /// path, mirroring `StateGraph`'s).
    code_index: OnceLock<HashMap<Vec<bool>, Vec<usize>>>,
}

impl SymbolicStateSpace {
    /// Builds the state space symbolically.
    ///
    /// # Errors
    ///
    /// Returns the same [`StgError`]s as [`crate::StateGraph::build`]:
    /// boundedness failures for unsafe nets (detected symbolically),
    /// consistency violations from the shared code propagation.
    pub fn build(stg: &Stg) -> Result<Self, StgError> {
        Self::build_bounded(stg, crate::state_space::DEFAULT_STATE_BOUND)
    }

    /// Like [`SymbolicStateSpace::build`] with an explicit state limit.
    ///
    /// # Errors
    ///
    /// See [`SymbolicStateSpace::build`].
    pub fn build_bounded(stg: &Stg, max_states: usize) -> Result<Self, StgError> {
        let mut manager = Manager::new();
        Self::build_bounded_in(stg, max_states, &mut manager)
    }

    /// Like [`SymbolicStateSpace::build_bounded`] inside a caller-owned
    /// BDD manager, so a sweep over structurally similar specifications
    /// (same place count — the CSC candidate grid) shares one unique
    /// table and operation cache across builds instead of recomputing
    /// every relation node. The resulting space is identical to a
    /// fresh-manager build (BDDs are canonical); only
    /// [`SymbolicStats::bdd_nodes`] reflects the manager's cumulative
    /// size.
    ///
    /// # Errors
    ///
    /// See [`SymbolicStateSpace::build`].
    pub fn build_bounded_in(
        stg: &Stg,
        max_states: usize,
        manager: &mut Manager,
    ) -> Result<Self, StgError> {
        let net = stg.net();
        if !net.initial_marking().is_safe() {
            return Err(StgError::Reach(ReachError::BoundExceeded(
                net.initial_marking(),
            )));
        }
        let run = symbolic_reachability_bounded_in(manager, net, max_states as u128)
            .map_err(|_| StgError::Reach(ReachError::StateLimit(max_states)))?;
        if let Some(witness) = unsafe_witness_in(net, manager, run.reached) {
            return Err(StgError::Reach(ReachError::BoundExceeded(witness)));
        }
        let stats = SymbolicStats {
            num_markings: run.num_markings,
            iterations: run.iterations,
            bdd_nodes: manager.node_count(),
        };

        // Decode the characteristic function into concrete markings, then
        // place the initial marking at index 0 (every consumer assumes
        // state 0 is initial).
        let mut markings = enumerate_markings(manager, run.reached, net);
        let m0 = net.initial_marking();
        let pos = markings
            .iter()
            .position(|m| *m == m0)
            .expect("initial marking is in its own reachability set");
        markings.swap(0, pos);
        let index: HashMap<Marking, usize> = markings
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, m)| (m, i))
            .collect();

        // Arcs by firing each transition from each decoded marking. This
        // iterates the *decoded set* — no frontier search: reachability
        // came from the fixed point above.
        let mut ts = TransitionSystem::new(markings.len(), 0);
        for (i, m) in markings.iter().enumerate() {
            for t in net.transitions() {
                if let Some(next) = net.fire(m, t) {
                    let j = *index
                        .get(&next)
                        .expect("successor of a reachable marking is reachable");
                    ts.add_arc(i, t, j);
                }
            }
        }

        let initial_values = match stg.initial_values() {
            Some(v) => v.to_vec(),
            None => infer_initial_values(stg, &ts),
        };
        let codes = propagate_codes(stg, &ts, &initial_values)?;
        let states: Vec<SgState> = markings
            .into_iter()
            .zip(codes)
            .map(|(marking, code)| SgState { marking, code })
            .collect();
        Ok(SymbolicStateSpace {
            states,
            ts,
            initial_values,
            num_signals: stg.num_signals(),
            stats,
            code_index: OnceLock::new(),
        })
    }

    /// Statistics of the underlying BDD traversal.
    #[must_use]
    pub fn stats(&self) -> SymbolicStats {
        self.stats
    }

    fn code_index(&self) -> &HashMap<Vec<bool>, Vec<usize>> {
        self.code_index
            .get_or_init(|| crate::state_graph::build_code_index(&self.states))
    }
}

impl StateSpace for SymbolicStateSpace {
    fn num_states(&self) -> usize {
        self.states.len()
    }

    fn num_signals(&self) -> usize {
        self.num_signals
    }

    fn code(&self, i: usize) -> &[bool] {
        &self.states[i].code
    }

    fn marking(&self, i: usize) -> &Marking {
        &self.states[i].marking
    }

    fn ts(&self) -> &TransitionSystem<TransitionId> {
        &self.ts
    }

    fn initial_values(&self) -> &[bool] {
        &self.initial_values
    }

    fn backend(&self) -> Backend {
        Backend::Symbolic
    }

    fn bdd_node_count(&self) -> Option<usize> {
        Some(self.stats().bdd_nodes)
    }

    fn states_with_code(&self, code: &[bool]) -> Vec<usize> {
        self.code_index().get(code).cloned().unwrap_or_default()
    }

    fn duplicate_code_classes(&self) -> Vec<(Vec<bool>, Vec<usize>)> {
        let mut out: Vec<(Vec<bool>, Vec<usize>)> = self
            .code_index()
            .iter()
            .filter(|(_, states)| states.len() > 1)
            .map(|(code, states)| (code.clone(), states.clone()))
            .collect();
        out.sort();
        out
    }

    fn distinct_code_count(&self) -> u128 {
        self.code_index().len() as u128
    }
}

/// Decodes every satisfying assignment of `reached` (over the
/// current-state variables) into a marking, in lexicographic place order.
/// Free variables branch both ways, so the enumeration is exact even when
/// a place's value is unconstrained.
fn enumerate_markings(m: &Manager, reached: Bdd, net: &PetriNet) -> Vec<Marking> {
    let places: Vec<_> = net.places().collect();
    let mut out = Vec::new();
    let mut counts = vec![0u32; places.len()];
    descend(m, reached, &places, 0, &mut counts, &mut out);
    out
}

fn descend(
    m: &Manager,
    f: Bdd,
    places: &[petri::PlaceId],
    idx: usize,
    counts: &mut Vec<u32>,
    out: &mut Vec<Marking>,
) {
    if f.is_zero() {
        return;
    }
    if idx == places.len() {
        debug_assert!(
            f.is_one(),
            "support of the reached set is the place variables"
        );
        out.push(Marking::from_counts(counts.clone()));
        return;
    }
    let v = current_var(places[idx]);
    let (lo, hi) = if m.root_var(f) == Some(v) {
        (m.low(f), m.high(f))
    } else {
        (f, f)
    };
    counts[idx] = 0;
    descend(m, lo, places, idx + 1, counts, out);
    counts[idx] = 1;
    descend(m, hi, places, idx + 1, counts, out);
    counts[idx] = 0;
}
