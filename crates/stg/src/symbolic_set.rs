//! The resident-BDD state-space backend.
//!
//! Where [`crate::SymbolicStateSpace`] runs the §2.2 fixed point and then
//! *decodes every marking* out of the characteristic function — paying
//! O(states) memory and time after a traversal whose whole point was to
//! avoid exactly that — this backend keeps the characteristic function
//! resident in its BDD manager and answers the synthesis queries
//! symbolically:
//!
//! * the state vector is the **joint** (marking, signal code) pair: one
//!   BDD variable pair per place *and* per signal, interleaved by a
//!   structural anchor heuristic so each signal's variables sit next to
//!   the places of its own handshake (keeping the marking ↔ code
//!   correlation narrow);
//! * excitation and quiescent regions, code lookups, USC/CSC verdicts,
//!   persistency and deadlock checks are cube intersections, projections
//!   and satisfying-assignment counts over that one function — no state
//!   is ever enumerated;
//! * when a consumer genuinely needs a *witness* (a conflict pair, an
//!   error state, a trace), individual states are decoded on demand by
//!   BDD unranking, served from a small LRU of materialised blocks;
//! * spaces small enough to enumerate cheaply can still serve the legacy
//!   per-state reference API (`code`/`marking`/`ts`) through a lazily
//!   materialised explicit view, so verification and waveform rendering
//!   keep working on controller-sized inputs. Beyond
//!   [`MATERIALISE_LIMIT`] those accessors panic — by then every
//!   supported flow runs set-level.
//!
//! State numbering matches [`crate::SymbolicStateSpace`]: index 0 is the
//! initial marking, the rest follow the lexicographic order of the BDD
//! enumeration (with the initial marking's slot swapped), so witnesses
//! are stable and reproducible.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use bdd::{Bdd, Manager, VarId};
use petri::reach::ReachError;
use petri::{Marking, PetriNet, TransitionId, TransitionSystem};

use crate::model::{SignalEdge, SignalId, Stg};
use crate::state_graph::{SgState, StgError};
use crate::state_space::{Backend, StateSet, StateSpace, DEFAULT_STATE_BOUND};
use crate::symbolic::SymbolicStats;

/// Largest space the legacy per-state reference API (`code`/`marking`/
/// `ts`) will materialise an explicit view for. Set-level queries and the
/// owned decode accessors work at any size.
pub const MATERIALISE_LIMIT: usize = 1 << 16;

/// States decoded together when a witness block is materialised.
const DECODE_BLOCK: usize = 256;

/// Blocks kept in the decode LRU (so repeated nearby witness lookups
/// never re-run the unranking).
const DECODE_LRU_BLOCKS: usize = 32;

/// The variable layout of one build: a current/next variable pair per
/// place and per signal, interleaved by structural anchor.
#[derive(Debug, Clone)]
struct VarMap {
    place_cur: Vec<VarId>,
    place_next: Vec<VarId>,
    sig_cur: Vec<VarId>,
    sig_next: Vec<VarId>,
}

impl VarMap {
    /// Interleaves signal variables among place variables: each signal is
    /// anchored at the smallest place index adjacent to any of its
    /// transitions, so the marking ↔ value correlation stays local in
    /// the variable order (the difference between a linear-sized and an
    /// exponentially wide reached set).
    fn build(stg: &Stg) -> VarMap {
        let net = stg.net();
        let num_places = net.num_places();
        let num_signals = stg.num_signals();
        let mut anchor = vec![usize::MAX; num_signals];
        for t in net.transitions() {
            if let Some(l) = stg.label(t) {
                let near = net
                    .preset(t)
                    .iter()
                    .chain(net.postset(t))
                    .map(|p| p.index())
                    .min();
                if let Some(a) = near {
                    let slot = &mut anchor[l.signal.index()];
                    *slot = (*slot).min(a);
                }
            }
        }
        // Entities sorted by (anchor, places-before-signals, index). The
        // relative order of places is preserved (their anchor is their
        // own index), so lexicographic enumeration by variable id visits
        // places in index order.
        let mut entities: Vec<(usize, u8, usize)> = (0..num_places).map(|i| (i, 0, i)).collect();
        entities.extend((0..num_signals).map(|j| (anchor[j], 1, j)));
        entities.sort_unstable();
        let mut map = VarMap {
            place_cur: vec![0; num_places],
            place_next: vec![0; num_places],
            sig_cur: vec![0; num_signals],
            sig_next: vec![0; num_signals],
        };
        for (pos, &(_, kind, idx)) in entities.iter().enumerate() {
            let cur = u32::try_from(2 * pos).expect("variable id fits u32");
            if kind == 0 {
                map.place_cur[idx] = cur;
                map.place_next[idx] = cur + 1;
            } else {
                map.sig_cur[idx] = cur;
                map.sig_next[idx] = cur + 1;
            }
        }
        map
    }

    fn cur_vars(&self) -> Vec<VarId> {
        let mut v = self.place_cur.clone();
        v.extend(&self.sig_cur);
        v
    }

    fn next_vars(&self) -> Vec<VarId> {
        let mut v = self.place_next.clone();
        v.extend(&self.sig_next);
        v
    }
}

/// One materialised decode block: the `(marking, code)` pairs of a
/// contiguous rank range.
type DecodedBlock = Arc<Vec<(Marking, Vec<bool>)>>;

/// Per-build query caches (all lazily filled, all behind one lock).
#[derive(Debug, Default)]
struct QueryCache {
    /// `markings ∧ preset-cube(t)` per transition index.
    enabled: HashMap<usize, Bdd>,
    /// Excitation regions per `(signal index, edge is Rise)`.
    excitation: HashMap<(usize, bool), Bdd>,
    /// ON marking sets per signal index (OFF is the complement within
    /// the reached markings).
    on: HashMap<usize, Bdd>,
    /// Place-only transition relations (avoid-path fixpoints).
    place_rels: Option<Vec<Bdd>>,
    /// Per-node satisfying-assignment counts over place-variable
    /// suffixes (the unranking tables). Valid for any BDD whose support
    /// is the current place variables.
    suffix_counts: HashMap<Bdd, u128>,
    /// Materialised decode blocks: block index → states of that rank
    /// range.
    blocks: HashMap<usize, DecodedBlock>,
    /// LRU order of `blocks`.
    block_order: VecDeque<usize>,
    /// Probe counter: states decoded through the block cache so far.
    decoded_states: u64,
    /// Cached deadlock verdict.
    deadlock: Option<bool>,
}

/// The fully materialised fallback view (small spaces only).
#[derive(Debug)]
struct ExplicitView {
    states: Vec<SgState>,
    ts: TransitionSystem<TransitionId>,
}

/// A state space kept resident in its BDD manager; see the module docs.
#[derive(Debug)]
pub struct SymbolicSetSpace {
    manager: Arc<Mutex<Manager>>,
    net: PetriNet,
    vars: VarMap,
    /// Characteristic function of the reachable (marking, code) pairs,
    /// over the current place + signal variables.
    reached: Bdd,
    /// Its projection to the place variables: the reachable markings.
    markings: Bdd,
    num_markings: u128,
    /// Lexicographic rank of the initial marking (index 0 swaps with it).
    initial_rank: u128,
    initial_values: Vec<bool>,
    num_signals: usize,
    stats: SymbolicStats,
    cache: Mutex<QueryCache>,
    view: OnceLock<ExplicitView>,
}

impl SymbolicSetSpace {
    /// Builds the resident state space, bounded by
    /// [`DEFAULT_STATE_BOUND`].
    ///
    /// # Errors
    ///
    /// The same [`StgError`]s as [`crate::StateGraph::build`]: unsafe
    /// nets report boundedness failures (with a witness marking),
    /// over-limit spaces report `StateLimit`, inconsistent
    /// specifications report the offending edge or state.
    pub fn build(stg: &Stg) -> Result<Self, StgError> {
        Self::build_bounded(stg, DEFAULT_STATE_BOUND)
    }

    /// Like [`SymbolicSetSpace::build`] with an explicit state limit.
    ///
    /// # Errors
    ///
    /// See [`SymbolicSetSpace::build`].
    pub fn build_bounded(stg: &Stg, max_states: usize) -> Result<Self, StgError> {
        Self::build_bounded_in(stg, max_states, Arc::new(Mutex::new(Manager::new())))
    }

    /// Like [`SymbolicSetSpace::build_bounded`] inside a caller-owned
    /// shared manager: the space keeps the `Arc` and serves every later
    /// query from it, so a sweep's candidate spaces share one unique
    /// table and operation cache. Unlike the decoding backend, reuse is
    /// sound across *any* net shapes — all counting here divides out the
    /// manager's full variable universe.
    ///
    /// # Errors
    ///
    /// See [`SymbolicSetSpace::build`].
    pub fn build_bounded_in(
        stg: &Stg,
        max_states: usize,
        manager: Arc<Mutex<Manager>>,
    ) -> Result<Self, StgError> {
        let net = stg.net().clone();
        let m0 = net.initial_marking();
        if !m0.is_safe() {
            return Err(StgError::Reach(ReachError::BoundExceeded(m0)));
        }
        let vars = VarMap::build(stg);
        let num_places = net.num_places();
        let num_signals = stg.num_signals();

        let mut mgr = manager.lock().expect("BDD manager poisoned");
        let m = &mut *mgr;
        for &v in vars
            .place_cur
            .iter()
            .chain(&vars.place_next)
            .chain(&vars.sig_cur)
            .chain(&vars.sig_next)
        {
            m.var(v);
        }

        // Phase 1 — the place-only token game, mirroring the explicit
        // builder's order exactly: boundedness (state limit, then the
        // safeness witness) is decided over the *full* marking set
        // before any code interpretation runs, so a specification that
        // is both unsafe and inconsistent reports the reachability
        // failure on every backend.
        let place_rels: Vec<Bdd> = net
            .transitions()
            .map(|t| place_clauses(m, &net, &vars, t))
            .collect();
        let m0_literals: Vec<(VarId, bool)> = net
            .places()
            .map(|p| (vars.place_cur[p.index()], m0.is_marked(p)))
            .collect();
        let place_init = m.cube(&m0_literals);
        let place_cur = vars.place_cur.clone();
        let place_next = vars.place_next.clone();
        let mut markings_full = place_init;
        let mut frontier = place_init;
        let mut iterations = 0usize;
        while !frontier.is_zero() {
            iterations += 1;
            let mut image_next = Manager::zero();
            for &rel in &place_rels {
                let img = m.and_exists(frontier, rel, &place_cur);
                image_next = m.or(image_next, img);
            }
            let image = m.rename(image_next, &place_next, &place_cur);
            frontier = m.diff(image, markings_full);
            markings_full = m.or(markings_full, frontier);
            if count_over(m, markings_full, &vars.place_cur) > max_states as u128 {
                return Err(StgError::Reach(ReachError::StateLimit(max_states)));
            }
        }

        // Safeness: the relation encoding excludes token-accumulating
        // firings, so look for a reached marking that enables a
        // transition onto an already-marked pure output place (same
        // closure as `petri::symbolic::unsafe_witness`).
        for t in net.transitions() {
            let pre = net.preset(t);
            let mut enabled = markings_full;
            for &p in pre {
                let v = m.var(vars.place_cur[p.index()]);
                enabled = m.and(enabled, v);
            }
            if enabled.is_zero() {
                continue;
            }
            for &p in net.postset(t) {
                if pre.contains(&p) {
                    continue;
                }
                let pv = m.var(vars.place_cur[p.index()]);
                let clash = m.and(enabled, pv);
                if clash.is_zero() {
                    continue;
                }
                let before = marking_of_sat(m, clash, &vars, num_places);
                let after = net
                    .fire(&before, t)
                    .expect("witness enables the transition");
                return Err(StgError::Reach(ReachError::BoundExceeded(after)));
            }
        }

        let initial_values = match stg.initial_values() {
            Some(v) => v.to_vec(),
            // Inference walks the token game breadth-first until every
            // signal's first edge is seen. Small nets (every CSC sweep
            // candidate) finish in a budgeted explicit walk; only when
            // the budget blows does the layered symbolic BFS take over —
            // scale workloads fix their initial values explicitly and
            // skip inference altogether.
            None => infer_initial_values_bounded(stg).unwrap_or_else(|| {
                infer_initial_values_symbolic(m, stg, &vars, &place_rels, place_init)
            }),
        };

        // Phase 2 — joint transition relations: the place clauses of the §2.2
        // encoding plus deterministic signal updates (a labelled edge
        // drives its signal from ¬after to after; everything else is
        // framed). Constraining the source value mirrors the explicit
        // token game, which never *follows* an inconsistent firing — it
        // reports it, as the post-fixpoint check below does.
        let mut relations: Vec<Bdd> = Vec::with_capacity(net.num_transitions());
        for t in net.transitions() {
            let mut rel = place_rels[t.index()];
            let label = stg.label(t);
            for j in 0..num_signals {
                let (c, n) = (vars.sig_cur[j], vars.sig_next[j]);
                let clause = match label {
                    Some(l) if l.signal.index() == j => {
                        let after = l.edge.value_after();
                        let lc = m.literal(c, !after);
                        let ln = m.literal(n, after);
                        m.and(lc, ln)
                    }
                    _ => {
                        let (cv, nv) = (m.var(c), m.var(n));
                        m.iff(cv, nv)
                    }
                };
                rel = m.and(rel, clause);
            }
            relations.push(rel);
        }

        // Initial (marking, code) cube.
        let mut literals = m0_literals;
        literals.extend((0..num_signals).map(|j| (vars.sig_cur[j], initial_values[j])));
        let init = m.cube(&literals);

        // Code-annotated fixed point. Boundedness was settled in phase 1;
        // what this loop must guard against is inconsistency, detected
        // *inside* the loop — the explicit token game trips on the first
        // inconsistent firing, and without the early exit an
        // inconsistent specification can pile up to 2^signals codes per
        // marking (the marking count stays bounded, the pair set
        // explodes regardless).
        let cur_all = vars.cur_vars();
        let next_all = vars.next_vars();
        let mut cur_all_sorted = cur_all.clone();
        cur_all_sorted.sort_unstable();
        let mut reached = init;
        let mut frontier = init;
        let edge_checks: Vec<(TransitionId, Bdd)> = net
            .transitions()
            .filter_map(|t| {
                let l = stg.label(t)?;
                let mut cube = m.literal(vars.sig_cur[l.signal.index()], l.edge.value_after());
                for &p in net.preset(t) {
                    let v = m.var(vars.place_cur[p.index()]);
                    cube = m.and(cube, v);
                }
                Some((t, cube))
            })
            .collect();
        let mut scratch_counts = HashMap::new();
        loop {
            // An edge enabled at the wrong source value on any new pair
            // is the explicit builder's InconsistentEdge, caught the
            // iteration the pair appears (the first round checks the
            // initial pair itself).
            for &(t, cube) in &edge_checks {
                let bad = m.and(frontier, cube);
                if !bad.is_zero() {
                    let mk = m.exists(reached, &vars.sig_cur);
                    let witness = marking_of_sat(m, bad, &vars, num_places);
                    let rank = lex_rank(m, mk, &vars, &witness, &mut scratch_counts);
                    let initial = lex_rank(m, mk, &vars, &m0, &mut scratch_counts);
                    return Err(StgError::InconsistentEdge {
                        transition: stg.label_string(t),
                        state: state_index_of_rank(rank, initial, &witness, &m0),
                    });
                }
            }
            let mk = m.exists(reached, &vars.sig_cur);
            let marking_count = count_over(m, mk, &vars.place_cur);
            // More pairs than markings: some marking carries two codes.
            if count_over(m, reached, &cur_all_sorted) > marking_count {
                for j in 0..num_signals {
                    let sv = m.var(vars.sig_cur[j]);
                    let on_pairs = m.and(reached, sv);
                    let on = m.exists(on_pairs, &vars.sig_cur);
                    let off_pairs = m.diff(reached, sv);
                    let off = m.exists(off_pairs, &vars.sig_cur);
                    let both = m.and(on, off);
                    if !both.is_zero() {
                        let witness = marking_of_sat(m, both, &vars, num_places);
                        let rank = lex_rank(m, mk, &vars, &witness, &mut scratch_counts);
                        let initial = lex_rank(m, mk, &vars, &m0, &mut scratch_counts);
                        return Err(StgError::InconsistentCode {
                            state: state_index_of_rank(rank, initial, &witness, &m0),
                        });
                    }
                }
                unreachable!("a code-multiplicity excess implies a two-valued signal");
            }
            if frontier.is_zero() {
                break;
            }
            let mut image_next = Manager::zero();
            for &rel in &relations {
                let img = m.and_exists(frontier, rel, &cur_all);
                image_next = m.or(image_next, img);
            }
            let image = m.rename(image_next, &next_all, &cur_all);
            frontier = m.diff(image, reached);
            reached = m.or(reached, frontier);
        }

        let markings = m.exists(reached, &vars.sig_cur);
        let num_markings = count_over(m, markings, &vars.place_cur);
        debug_assert_eq!(
            markings, markings_full,
            "a consistent spec reaches the same markings with and without codes"
        );

        // Consistency was validated inside the fixed point (edge checks
        // on every frontier, the code-multiplicity comparison after
        // every extension); what remains is the witness indexing table.
        let mut counts = scratch_counts;
        counts.clear(); // drop nodes of intermediate marking sets
        let initial_rank = lex_rank(m, markings, &vars, &m0, &mut counts);

        let stats = SymbolicStats {
            num_markings,
            iterations,
            bdd_nodes: m.node_count(),
        };
        drop(mgr);
        Ok(SymbolicSetSpace {
            manager,
            net,
            vars,
            reached,
            markings,
            num_markings,
            initial_rank,
            initial_values,
            num_signals,
            stats,
            cache: Mutex::new(QueryCache {
                suffix_counts: counts,
                place_rels: Some(place_rels),
                ..QueryCache::default()
            }),
            view: OnceLock::new(),
        })
    }

    /// Statistics of the underlying BDD traversal.
    #[must_use]
    pub fn stats(&self) -> SymbolicStats {
        self.stats
    }

    /// Exact number of reachable markings (the BDD count — never
    /// saturated, never enumerated).
    #[must_use]
    pub fn num_markings(&self) -> u128 {
        self.num_markings
    }

    /// Probe: how many individual states have been decoded through the
    /// witness block cache so far.
    #[must_use]
    pub fn decoded_states(&self) -> u64 {
        self.cache.lock().expect("cache poisoned").decoded_states
    }

    /// Probe: whether the legacy per-state reference API has forced a
    /// full explicit materialisation of this space.
    #[must_use]
    pub fn is_materialised(&self) -> bool {
        self.view.get().is_some()
    }

    fn mgr(&self) -> MutexGuard<'_, Manager> {
        self.manager.lock().expect("BDD manager poisoned")
    }

    fn num_places(&self) -> usize {
        self.net.num_places()
    }

    /// The symbolic handle inside a [`StateSet`] owned by this space.
    fn bdd_of(&self, set: &StateSet) -> Bdd {
        match set {
            StateSet::Symbolic(b) => *b,
            StateSet::Indices(_) => {
                panic!("explicit state-set handle used with the resident-BDD backend")
            }
        }
    }

    /// `markings ∧ preset-cube(t)` — the enabled set of a transition.
    /// Valid as an enabledness test because the build's safeness check
    /// guarantees no reached marking enables a firing onto a marked
    /// output place.
    fn enabled_set_bdd(&self, m: &mut Manager, cache: &mut QueryCache, t: TransitionId) -> Bdd {
        if let Some(&b) = cache.enabled.get(&t.index()) {
            return b;
        }
        let mut b = self.markings;
        for &p in self.net.preset(t) {
            let v = m.var(self.vars.place_cur[p.index()]);
            b = m.and(b, v);
        }
        cache.enabled.insert(t.index(), b);
        b
    }

    /// ON marking set of a signal: markings whose (unique) code sets it.
    fn on_set_bdd(&self, m: &mut Manager, cache: &mut QueryCache, sig: usize) -> Bdd {
        if let Some(&b) = cache.on.get(&sig) {
            return b;
        }
        let sv = m.var(self.vars.sig_cur[sig]);
        let pairs = m.and(self.reached, sv);
        let b = m.exists(pairs, &self.vars.sig_cur);
        cache.on.insert(sig, b);
        b
    }

    fn excitation_bdd(
        &self,
        m: &mut Manager,
        cache: &mut QueryCache,
        stg: &Stg,
        signal: SignalId,
        edge: SignalEdge,
    ) -> Bdd {
        let key = (signal.index(), edge == SignalEdge::Rise);
        if let Some(&b) = cache.excitation.get(&key) {
            return b;
        }
        let mut b = Manager::zero();
        for t in self.net.transitions() {
            if stg
                .label(t)
                .is_some_and(|l| l.signal == signal && l.edge == edge)
            {
                let en = self.enabled_set_bdd(m, cache, t);
                b = m.or(b, en);
            }
        }
        cache.excitation.insert(key, b);
        b
    }

    /// Place-only transition relations (lazily built; used by the
    /// avoid-path fixpoint).
    fn place_relations(&self, m: &mut Manager, cache: &mut QueryCache) -> Vec<Bdd> {
        if let Some(rels) = &cache.place_rels {
            return rels.clone();
        }
        let rels: Vec<Bdd> = self
            .net
            .transitions()
            .map(|t| place_clauses(m, &self.net, &self.vars, t))
            .collect();
        cache.place_rels = Some(rels.clone());
        rels
    }

    /// Count of markings in a place-variable set.
    fn count_markings(&self, m: &Manager, f: Bdd) -> u128 {
        count_over(m, f, &self.vars.place_cur)
    }

    /// The decoded `(marking, code)` of state `i`, through the LRU block
    /// cache.
    fn decode(&self, i: usize) -> (Marking, Vec<bool>) {
        assert!(
            (i as u128) < self.num_markings,
            "state index {i} out of range"
        );
        let block = i / DECODE_BLOCK;
        let mut cache = self.cache.lock().expect("cache poisoned");
        if let Some(entries) = cache.blocks.get(&block) {
            let entries = Arc::clone(entries);
            // Refresh recency so a hot block outlives cold inserts.
            cache.block_order.retain(|&b| b != block);
            cache.block_order.push_back(block);
            return entries[i - block * DECODE_BLOCK].clone();
        }
        // Materialise the block: unrank each index, then evaluate the
        // per-signal ON sets on the marking bits.
        let mut m = self.mgr();
        let on_sets: Vec<Bdd> = (0..self.num_signals)
            .map(|j| self.on_set_bdd(&mut m, &mut cache, j))
            .collect();
        let lo = block * DECODE_BLOCK;
        let hi = (lo + DECODE_BLOCK).min(usize::try_from(self.num_markings).unwrap_or(usize::MAX));
        let mut entries = Vec::with_capacity(hi - lo);
        for rank in lo..hi {
            let marking = self.unrank_state(&m, &mut cache.suffix_counts, rank as u128);
            let code = self.code_of_marking(&m, &on_sets, &marking);
            entries.push((marking, code));
        }
        drop(m);
        cache.decoded_states += (hi - lo) as u64;
        let entries = Arc::new(entries);
        cache.blocks.insert(block, Arc::clone(&entries));
        cache.block_order.push_back(block);
        if cache.block_order.len() > DECODE_LRU_BLOCKS {
            if let Some(evicted) = cache.block_order.pop_front() {
                cache.blocks.remove(&evicted);
            }
        }
        entries[i - lo].clone()
    }

    /// The marking at state index `i` (index 0 is the initial marking,
    /// swapped with its lexicographic slot).
    fn unrank_state(&self, m: &Manager, counts: &mut HashMap<Bdd, u128>, i: u128) -> Marking {
        let m0 = self.net.initial_marking();
        if i == 0 {
            return m0;
        }
        let lex = if i == self.initial_rank { 0 } else { i };
        lex_unrank(m, self.markings, &self.vars, self.num_places(), lex, counts)
    }

    /// The state index of a reachable marking.
    fn rank_state(&self, m: &Manager, counts: &mut HashMap<Bdd, u128>, marking: &Marking) -> usize {
        let m0 = self.net.initial_marking();
        let r = lex_rank(m, self.markings, &self.vars, marking, counts);
        usize::try_from(state_index_of_rank_u128(r, self.initial_rank, marking, &m0))
            .expect("witness index fits usize")
    }

    /// Evaluates the per-signal ON sets at a marking to read its code.
    fn code_of_marking(&self, m: &Manager, on_sets: &[Bdd], marking: &Marking) -> Vec<bool> {
        let mut assignment = vec![false; m.var_count() as usize];
        for p in self.net.places() {
            if marking.is_marked(p) {
                assignment[self.vars.place_cur[p.index()] as usize] = true;
            }
        }
        on_sets.iter().map(|&b| m.eval(b, &assignment)).collect()
    }

    /// The small-space explicit fallback view.
    ///
    /// # Panics
    ///
    /// Panics beyond [`MATERIALISE_LIMIT`] — the per-state reference API
    /// is not available on spaces that large; use the set-level queries.
    fn view(&self) -> &ExplicitView {
        self.view.get_or_init(|| {
            assert!(
                self.num_markings <= MATERIALISE_LIMIT as u128,
                "the resident-BDD space has {} states — too large to materialise; \
                 use the set-level StateSpace queries or decode_code/decode_marking",
                self.num_markings
            );
            let n = usize::try_from(self.num_markings).expect("bounded by the limit");
            let mut cache = self.cache.lock().expect("cache poisoned");
            let mut m = self.mgr();
            let on_sets: Vec<Bdd> = (0..self.num_signals)
                .map(|j| self.on_set_bdd(&mut m, &mut cache, j))
                .collect();
            let mut markings = Vec::with_capacity(n);
            enumerate_markings(
                &m,
                self.markings,
                &self.vars,
                self.num_places(),
                &mut markings,
            );
            let m0 = self.net.initial_marking();
            let pos = markings
                .iter()
                .position(|mk| *mk == m0)
                .expect("initial marking is reachable");
            markings.swap(0, pos);
            let index: HashMap<Marking, usize> = markings
                .iter()
                .cloned()
                .enumerate()
                .map(|(i, mk)| (mk, i))
                .collect();
            let mut ts = TransitionSystem::new(markings.len(), 0);
            for (i, mk) in markings.iter().enumerate() {
                for t in self.net.transitions() {
                    if let Some(next) = self.net.fire(mk, t) {
                        let j = *index
                            .get(&next)
                            .expect("successor of a reachable marking is reachable");
                        ts.add_arc(i, t, j);
                    }
                }
            }
            let states: Vec<SgState> = markings
                .into_iter()
                .map(|mk| {
                    let code = self.code_of_marking(&m, &on_sets, &mk);
                    SgState { marking: mk, code }
                })
                .collect();
            ExplicitView { states, ts }
        })
    }
}

impl StateSpace for SymbolicSetSpace {
    fn num_states(&self) -> usize {
        usize::try_from(self.num_markings).unwrap_or(usize::MAX)
    }

    fn num_signals(&self) -> usize {
        self.num_signals
    }

    fn code(&self, i: usize) -> &[bool] {
        &self.view().states[i].code
    }

    fn marking(&self, i: usize) -> &Marking {
        &self.view().states[i].marking
    }

    fn ts(&self) -> &TransitionSystem<TransitionId> {
        &self.view().ts
    }

    fn initial_values(&self) -> &[bool] {
        &self.initial_values
    }

    fn backend(&self) -> Backend {
        Backend::SymbolicSet
    }

    fn bdd_node_count(&self) -> Option<usize> {
        Some(self.stats().bdd_nodes)
    }

    fn decoded_state_count(&self) -> Option<u64> {
        Some(self.decoded_states())
    }

    fn set_level_native(&self) -> bool {
        true
    }

    fn value(&self, i: usize, sig: SignalId) -> bool {
        self.decode(i).1[sig.index()]
    }

    fn decode_code(&self, i: usize) -> Vec<bool> {
        self.decode(i).1
    }

    fn decode_marking(&self, i: usize) -> Marking {
        self.decode(i).0
    }

    fn initial_marking(&self) -> Marking {
        // Straight from the net — no view materialisation, no decode:
        // this is what lets composed verification anchor on a resident
        // space of any size.
        self.net.initial_marking()
    }

    fn successor(&self, state: usize, t: TransitionId) -> Option<usize> {
        let (marking, _) = self.decode(state);
        let next = self.net.fire(&marking, t)?;
        let mut cache = self.cache.lock().expect("cache poisoned");
        let m = self.mgr();
        Some(self.rank_state(&m, &mut cache.suffix_counts, &next))
    }

    fn excitations(&self, stg: &Stg, i: usize) -> Vec<(TransitionId, SignalId, SignalEdge)> {
        let (marking, _) = self.decode(i);
        let mut out = Vec::new();
        for t in self.net.transitions() {
            if self.net.is_enabled(&marking, t) {
                if let Some(l) = stg.label(t) {
                    out.push((t, l.signal, l.edge));
                }
            }
        }
        out
    }

    fn states_with_code(&self, code: &[bool]) -> Vec<usize> {
        let set = self.states_with_code_set(code);
        self.set_states(&set, usize::MAX)
    }

    fn marking_count(&self) -> u128 {
        self.num_markings
    }

    fn all_states(&self) -> StateSet {
        StateSet::Symbolic(self.markings)
    }

    fn set_count(&self, set: &StateSet) -> u128 {
        let b = self.bdd_of(set);
        let m = self.mgr();
        self.count_markings(&m, b)
    }

    fn set_is_empty(&self, set: &StateSet) -> bool {
        self.bdd_of(set).is_zero()
    }

    fn set_union(&self, a: &StateSet, b: &StateSet) -> StateSet {
        let (a, b) = (self.bdd_of(a), self.bdd_of(b));
        let mut m = self.mgr();
        StateSet::Symbolic(m.or(a, b))
    }

    fn set_intersect(&self, a: &StateSet, b: &StateSet) -> StateSet {
        let (a, b) = (self.bdd_of(a), self.bdd_of(b));
        let mut m = self.mgr();
        StateSet::Symbolic(m.and(a, b))
    }

    fn set_minus(&self, a: &StateSet, b: &StateSet) -> StateSet {
        let (a, b) = (self.bdd_of(a), self.bdd_of(b));
        let mut m = self.mgr();
        StateSet::Symbolic(m.diff(a, b))
    }

    fn set_states(&self, set: &StateSet, limit: usize) -> Vec<usize> {
        let b = self.bdd_of(set);
        if b.is_zero() || limit == 0 {
            return Vec::new();
        }
        let mut cache = self.cache.lock().expect("cache poisoned");
        let m = self.mgr();
        let m0 = self.net.initial_marking();
        let mut out = Vec::new();
        // The initial marking maps to index 0 wherever it sits in the
        // lexicographic order, so test its membership directly; every
        // other marking's index is its (swap-adjusted) rank, ascending
        // with the enumeration, so the first `limit` non-initial
        // markings plus a possible swap target suffice.
        let mut m0_assignment = vec![false; m.var_count() as usize];
        for p in self.net.places() {
            if m0.is_marked(p) {
                m0_assignment[self.vars.place_cur[p.index()] as usize] = true;
            }
        }
        if m.eval(b, &m0_assignment) {
            out.push(0);
        }
        let want = limit.saturating_add(1);
        let mut scratch: Vec<Marking> = Vec::new();
        let mut counts = vec![0u32; self.num_places()];
        descend_markings(
            &m,
            b,
            &self.vars,
            self.num_places(),
            0,
            &mut counts,
            &mut |marking| {
                scratch.push(marking);
                scratch.len() < want
            },
        );
        for marking in scratch {
            if marking == m0 {
                continue; // already covered as index 0
            }
            let rank = lex_rank(
                &m,
                self.markings,
                &self.vars,
                &marking,
                &mut cache.suffix_counts,
            );
            let idx = state_index_of_rank_u128(rank, self.initial_rank, &marking, &m0);
            out.push(usize::try_from(idx).expect("materialised index fits usize"));
        }
        out.sort_unstable();
        out.dedup();
        out.truncate(limit);
        out
    }

    fn set_codes(&self, set: &StateSet) -> Vec<Vec<bool>> {
        let b = self.bdd_of(set);
        let mut m = self.mgr();
        let pairs = m.and(self.reached, b);
        let place_cur = self.vars.place_cur.clone();
        let codes_bdd = m.exists(pairs, &place_cur);
        let mut out = enumerate_codes(&m, codes_bdd, &self.vars);
        out.sort_unstable();
        out
    }

    fn distinct_code_count(&self) -> u128 {
        let mut m = self.mgr();
        let place_cur = self.vars.place_cur.clone();
        let codes = m.exists(self.reached, &place_cur);
        let mut sig_sorted = self.vars.sig_cur.clone();
        sig_sorted.sort_unstable();
        count_over(&m, codes, &sig_sorted)
    }

    fn sets_share_code(&self, a: &StateSet, b: &StateSet) -> bool {
        let (a, b) = (self.bdd_of(a), self.bdd_of(b));
        let mut m = self.mgr();
        let place_cur = self.vars.place_cur.clone();
        let pa = m.and(self.reached, a);
        let ca = m.exists(pa, &place_cur);
        let pb = m.and(self.reached, b);
        let cb = m.exists(pb, &place_cur);
        !m.and(ca, cb).is_zero()
    }

    fn states_with_code_set(&self, code: &[bool]) -> StateSet {
        let mut m = self.mgr();
        let literals: Vec<(VarId, bool)> = (0..self.num_signals)
            .map(|j| (self.vars.sig_cur[j], code[j]))
            .collect();
        let cube = m.cube(&literals);
        let pairs = m.and(self.reached, cube);
        let set = m.exists(pairs, &self.vars.sig_cur);
        StateSet::Symbolic(set)
    }

    fn duplicate_code_classes(&self) -> Vec<(Vec<bool>, Vec<usize>)> {
        let codes = {
            let mut m = self.mgr();
            let place_cur = self.vars.place_cur.clone();
            let codes_bdd = m.exists(self.reached, &place_cur);
            enumerate_codes(&m, codes_bdd, &self.vars)
        };
        let mut out = Vec::new();
        for code in codes {
            let set = self.states_with_code_set(&code);
            if self.set_count(&set) > 1 {
                out.push((code, self.set_states(&set, usize::MAX)));
            }
        }
        out.sort();
        out
    }

    fn excitation_region(&self, stg: &Stg, signal: SignalId, edge: SignalEdge) -> StateSet {
        let mut cache = self.cache.lock().expect("cache poisoned");
        let mut m = self.mgr();
        StateSet::Symbolic(self.excitation_bdd(&mut m, &mut cache, stg, signal, edge))
    }

    fn value_region(&self, signal: SignalId, value: bool) -> StateSet {
        let mut cache = self.cache.lock().expect("cache poisoned");
        let mut m = self.mgr();
        let on = self.on_set_bdd(&mut m, &mut cache, signal.index());
        if value {
            StateSet::Symbolic(on)
        } else {
            StateSet::Symbolic(m.diff(self.markings, on))
        }
    }

    fn has_deadlock(&self) -> bool {
        let mut cache = self.cache.lock().expect("cache poisoned");
        let mut m = self.mgr();
        if let Some(d) = cache.deadlock {
            return d;
        }
        let mut dead = self.markings;
        for t in self.net.transitions() {
            if dead.is_zero() {
                break;
            }
            let en = self.enabled_set_bdd(&mut m, &mut cache, t);
            dead = m.diff(dead, en);
        }
        let d = !dead.is_zero();
        cache.deadlock = Some(d);
        d
    }

    fn disabling_count(&self, t: TransitionId, u: TransitionId) -> u128 {
        if t == u {
            return 0;
        }
        let mut cache = self.cache.lock().expect("cache poisoned");
        let mut m = self.mgr();
        let en_t = self.enabled_set_bdd(&mut m, &mut cache, t);
        let en_u = self.enabled_set_bdd(&mut m, &mut cache, u);
        let mut both = m.and(en_t, en_u);
        if both.is_zero() {
            return 0;
        }
        // `t` still enabled after firing `u`: each preset place of `t`
        // must be marked in the successor — produced by `u`, or marked
        // now and not consumed by `u`.
        let pre_u = self.net.preset(u);
        let post_u = self.net.postset(u);
        let mut after = Manager::one();
        for &p in self.net.preset(t) {
            if post_u.contains(&p) {
                continue; // marked after u regardless
            }
            if pre_u.contains(&p) {
                after = Manager::zero(); // consumed: t disabled for sure
                break;
            }
            let v = m.var(self.vars.place_cur[p.index()]);
            after = m.and(after, v);
        }
        both = m.diff(both, after);
        self.count_markings(&m, both)
    }

    fn reaches_avoiding(
        &self,
        from: usize,
        to: usize,
        avoid: (TransitionId, TransitionId),
    ) -> bool {
        let from_m = self.decode(from);
        let to_m = self.decode(to);
        let mut cache = self.cache.lock().expect("cache poisoned");
        let mut m = self.mgr();
        let rels = self.place_relations(&mut m, &mut cache);
        let active: Vec<Bdd> = self
            .net
            .transitions()
            .filter(|&t| t != avoid.0 && t != avoid.1)
            .map(|t| rels[t.index()])
            .collect();
        let literals: Vec<(VarId, bool)> = self
            .net
            .places()
            .map(|p| (self.vars.place_cur[p.index()], from_m.0.is_marked(p)))
            .collect();
        let start = m.cube(&literals);
        let target: Vec<(VarId, bool)> = self
            .net
            .places()
            .map(|p| (self.vars.place_cur[p.index()], to_m.0.is_marked(p)))
            .collect();
        let target = m.cube(&target);
        let place_cur = self.vars.place_cur.clone();
        let place_next = self.vars.place_next.clone();
        let mut reached = start;
        let mut frontier = start;
        while !frontier.is_zero() {
            let mut image_next = Manager::zero();
            for &rel in &active {
                let img = m.and_exists(frontier, rel, &place_cur);
                image_next = m.or(image_next, img);
            }
            let image = m.rename(image_next, &place_next, &place_cur);
            if !m.and(image, target).is_zero() {
                return true;
            }
            frontier = m.diff(image, reached);
            reached = m.or(reached, frontier);
        }
        false
    }
}

// ---------------------------------------------------------------------
// Free helpers (kept out of the impl so build can use them before a
// space exists)
// ---------------------------------------------------------------------

/// The place clauses of one transition relation (the §2.2 encoding with
/// this build's variable map).
fn place_clauses(m: &mut Manager, net: &PetriNet, vars: &VarMap, t: TransitionId) -> Bdd {
    let pre = net.preset(t);
    let post = net.postset(t);
    let mut rel = Manager::one();
    for p in net.places() {
        let in_pre = pre.contains(&p);
        let in_post = post.contains(&p);
        let c = m.var(vars.place_cur[p.index()]);
        let n = m.var(vars.place_next[p.index()]);
        let clause = match (in_pre, in_post) {
            (true, false) => {
                let nn = m.not(n);
                m.and(c, nn)
            }
            (false, true) => {
                let nc = m.not(c);
                m.and(nc, n)
            }
            (true, true) => m.and(c, n),
            (false, false) => m.iff(c, n),
        };
        rel = m.and(rel, clause);
    }
    rel
}

/// Number of satisfying assignments of `f` over the given ascending
/// variable list, which must cover `f`'s support. Counting walks the
/// diagram against the list directly — no full-universe `sat_count`
/// followed by a shift, which would silently overflow `u128` once the
/// shared manager's variable universe grows past 128 variables (state
/// vectors of ~60+ places/signals, exactly the scale this backend
/// exists for).
fn count_over(m: &Manager, f: Bdd, vars: &[VarId]) -> u128 {
    let mut memo = HashMap::new();
    count_vars_from(m, f, vars, 0, &mut memo)
}

/// Count over the suffix `vars[pos..]` (memo keyed per node: a node's
/// count over the suffix starting at its own variable is
/// position-independent).
fn count_vars_from(
    m: &Manager,
    f: Bdd,
    vars: &[VarId],
    pos: usize,
    memo: &mut HashMap<Bdd, u128>,
) -> u128 {
    fn var_pos(m: &Manager, f: Bdd, vars: &[VarId]) -> usize {
        match m.root_var(f) {
            Some(v) => vars
                .binary_search(&v)
                .unwrap_or_else(|_| panic!("variable {v} outside the counting subspace")),
            None => vars.len(),
        }
    }
    fn rec(m: &Manager, f: Bdd, vars: &[VarId], memo: &mut HashMap<Bdd, u128>) -> u128 {
        if f.is_zero() {
            return 0;
        }
        if f.is_one() {
            return 1;
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let pos = var_pos(m, f, vars);
        let (lo, hi) = (m.low(f), m.high(f));
        let clo = rec(m, lo, vars, memo);
        let chi = rec(m, hi, vars, memo);
        let gap_lo = var_pos(m, lo, vars) - pos - 1;
        let gap_hi = var_pos(m, hi, vars) - pos - 1;
        let c = (clo << gap_lo) + (chi << gap_hi);
        memo.insert(f, c);
        c
    }
    let c = rec(m, f, vars, memo);
    c << (var_pos(m, f, vars) - pos)
}

/// Decodes one satisfying assignment of a set into its marking by
/// walking a single satisfying path (unconstrained places default to
/// empty; signal variables along the path are ignored). O(path) — never
/// expands don't-care variables.
fn marking_of_sat(m: &Manager, f: Bdd, vars: &VarMap, num_places: usize) -> Marking {
    assert!(!f.is_zero(), "no satisfying marking in an empty set");
    let mut counts = vec![0u32; num_places];
    let mut cur = f;
    while !cur.is_const() {
        let v = m.root_var(cur).expect("non-terminal");
        let (lo, hi) = (m.low(cur), m.high(cur));
        let (bit, next) = if lo.is_zero() {
            (true, hi)
        } else {
            (false, lo)
        };
        if bit {
            if let Ok(pos) = vars.place_cur.binary_search(&v) {
                counts[pos] = 1;
            }
        }
        cur = next;
    }
    debug_assert!(cur.is_one());
    Marking::from_counts(counts)
}

/// Budgeted explicit first-edge inference: breadth-first token game up
/// to a fixed number of markings, deciding each signal's polarity from
/// the first enabled edge (lowest transition id per state). Returns
/// `None` when the budget blows or the walk ends with signals undecided
/// that a full traversal might still reach — the symbolic fallback then
/// decides.
fn infer_initial_values_bounded(stg: &Stg) -> Option<Vec<bool>> {
    const BUDGET: usize = 4096;
    let net = stg.net();
    let num_signals = stg.num_signals();
    let mut first_edge: Vec<Option<SignalEdge>> = vec![None; num_signals];
    let mut undecided = num_signals;
    let m0 = net.initial_marking();
    let mut visited = std::collections::HashSet::new();
    let mut queue = VecDeque::new();
    visited.insert(m0.clone());
    queue.push_back(m0);
    while let Some(mk) = queue.pop_front() {
        for t in net.transitions() {
            if !net.is_enabled(&mk, t) {
                continue;
            }
            if let Some(l) = stg.label(t) {
                let slot = &mut first_edge[l.signal.index()];
                if slot.is_none() {
                    *slot = Some(l.edge);
                    undecided -= 1;
                }
            }
            if undecided == 0 {
                break;
            }
            if let Some(next) = net.fire(&mk, t) {
                if next.is_safe() && !visited.contains(&next) {
                    if visited.len() >= BUDGET {
                        return None;
                    }
                    visited.insert(next.clone());
                    queue.push_back(next);
                }
            }
        }
        if undecided == 0 {
            break;
        }
    }
    Some(
        first_edge
            .into_iter()
            .map(|e| match e {
                Some(SignalEdge::Rise) | None => false,
                Some(SignalEdge::Fall) => true,
            })
            .collect(),
    )
}

/// Infers initial signal values by a layered symbolic BFS over the
/// place-only token game: the first layer at which an edge of a signal
/// becomes enabled decides its polarity (rising ⟹ starts 0), mirroring
/// the explicit builder's first-edge rule. Ties within one layer fall to
/// the lowest transition id — the one place the backends can legitimately
/// disagree: the explicit builder breaks the same tie by its (arbitrary)
/// BFS arc-iteration order. For *consistent* specifications any
/// first-edge answer is the unique correct one, so this only matters for
/// specs that are ambiguous anyway (the wrong guess then fails the main
/// fixed point's consistency check, as it does on the explicit path);
/// scale workloads should fix initial values explicitly.
fn infer_initial_values_symbolic(
    m: &mut Manager,
    stg: &Stg,
    vars: &VarMap,
    relations: &[Bdd],
    init: Bdd,
) -> Vec<bool> {
    let net = stg.net();
    let num_signals = stg.num_signals();
    let mut first_edge: Vec<Option<SignalEdge>> = vec![None; num_signals];
    let mut undecided = num_signals;
    let place_cur = vars.place_cur.clone();
    let place_next = vars.place_next.clone();
    let mut reached = init;
    let mut frontier = init;
    while !frontier.is_zero() && undecided > 0 {
        for t in net.transitions() {
            let Some(l) = stg.label(t) else { continue };
            if first_edge[l.signal.index()].is_some() {
                continue;
            }
            let mut enabled = frontier;
            for &p in net.preset(t) {
                let v = m.var(vars.place_cur[p.index()]);
                enabled = m.and(enabled, v);
            }
            if !enabled.is_zero() {
                first_edge[l.signal.index()] = Some(l.edge);
                undecided -= 1;
            }
        }
        let mut image_next = Manager::zero();
        for &rel in relations {
            let img = m.and_exists(frontier, rel, &place_cur);
            image_next = m.or(image_next, img);
        }
        let image = m.rename(image_next, &place_next, &place_cur);
        frontier = m.diff(image, reached);
        reached = m.or(reached, frontier);
    }
    first_edge
        .into_iter()
        .map(|e| match e {
            Some(SignalEdge::Rise) | None => false,
            Some(SignalEdge::Fall) => true,
        })
        .collect()
}

/// Lexicographic rank of `marking` within the set `f` (by place index,
/// 0 before 1). The marking need not be in the set for the arithmetic
/// to be well-defined, but callers only rank reachable markings.
fn lex_rank(
    m: &Manager,
    f: Bdd,
    vars: &VarMap,
    marking: &Marking,
    memo: &mut HashMap<Bdd, u128>,
) -> u128 {
    let num_places = vars.place_cur.len();
    let mut rank = 0u128;
    let mut cur = f;
    for pos in 0..num_places {
        let v = vars.place_cur[pos];
        let bit = marking.tokens(petri::PlaceId::from_index(pos)) > 0;
        let (lo, hi) = if m.root_var(cur) == Some(v) {
            (m.low(cur), m.high(cur))
        } else {
            (cur, cur)
        };
        if bit {
            rank += count_vars_from(m, lo, &vars.place_cur, pos + 1, memo);
            cur = hi;
        } else {
            cur = lo;
        }
    }
    rank
}

/// The `i`-th marking of the set `f` in lexicographic order.
fn lex_unrank(
    m: &Manager,
    f: Bdd,
    vars: &VarMap,
    num_places: usize,
    mut i: u128,
    memo: &mut HashMap<Bdd, u128>,
) -> Marking {
    let mut counts = vec![0u32; num_places];
    let mut cur = f;
    for (pos, slot) in counts.iter_mut().enumerate() {
        let v = vars.place_cur[pos];
        let (lo, hi) = if m.root_var(cur) == Some(v) {
            (m.low(cur), m.high(cur))
        } else {
            (cur, cur)
        };
        let c0 = count_vars_from(m, lo, &vars.place_cur, pos + 1, memo);
        if i < c0 {
            cur = lo;
        } else {
            i -= c0;
            *slot = 1;
            cur = hi;
        }
    }
    debug_assert!(cur.is_one() && i == 0, "rank within the set's count");
    Marking::from_counts(counts)
}

/// Maps a lexicographic rank to a state index under the initial-marking
/// swap (index 0 ↔ the initial marking's lexicographic slot).
fn state_index_of_rank_u128(
    rank: u128,
    initial_rank: u128,
    marking: &Marking,
    m0: &Marking,
) -> u128 {
    if marking == m0 {
        0
    } else if rank == 0 {
        initial_rank
    } else {
        rank
    }
}

fn state_index_of_rank(rank: u128, initial_rank: u128, marking: &Marking, m0: &Marking) -> usize {
    usize::try_from(state_index_of_rank_u128(rank, initial_rank, marking, m0))
        .expect("witness index fits usize")
}

/// Enumerates every marking of a place-variable set in lexicographic
/// order (free variables branch both ways).
fn enumerate_markings(
    m: &Manager,
    f: Bdd,
    vars: &VarMap,
    num_places: usize,
    out: &mut Vec<Marking>,
) {
    let mut counts = vec![0u32; num_places];
    descend_markings(m, f, vars, num_places, 0, &mut counts, &mut |mk| {
        out.push(mk);
        true
    });
}

/// Shared recursive descent for the enumerators; returns `false` to
/// abort.
fn descend_markings(
    m: &Manager,
    f: Bdd,
    vars: &VarMap,
    num_places: usize,
    pos: usize,
    counts: &mut Vec<u32>,
    visit: &mut impl FnMut(Marking) -> bool,
) -> bool {
    if f.is_zero() {
        return true;
    }
    if pos == num_places {
        debug_assert!(f.is_one(), "support is the current place variables");
        return visit(Marking::from_counts(counts.clone()));
    }
    let v = vars.place_cur[pos];
    let (lo, hi) = if m.root_var(f) == Some(v) {
        (m.low(f), m.high(f))
    } else {
        (f, f)
    };
    counts[pos] = 0;
    if !descend_markings(m, lo, vars, num_places, pos + 1, counts, visit) {
        return false;
    }
    counts[pos] = 1;
    let keep = descend_markings(m, hi, vars, num_places, pos + 1, counts, visit);
    counts[pos] = 0;
    keep
}

/// Enumerates the codes of a signal-variable set (indexed by signal id,
/// free variables branching both ways).
fn enumerate_codes(m: &Manager, f: Bdd, vars: &VarMap) -> Vec<Vec<bool>> {
    // Signal variables in ascending id order, with the signal index each
    // one belongs to (the anchor interleaving permutes them).
    let mut sig_order: Vec<(VarId, usize)> = vars
        .sig_cur
        .iter()
        .enumerate()
        .map(|(j, &v)| (v, j))
        .collect();
    sig_order.sort_unstable();
    let mut out = Vec::new();
    let mut code = vec![false; vars.sig_cur.len()];
    descend_codes(m, f, &sig_order, 0, &mut code, &mut out);
    out
}

fn descend_codes(
    m: &Manager,
    f: Bdd,
    sig_order: &[(VarId, usize)],
    pos: usize,
    code: &mut Vec<bool>,
    out: &mut Vec<Vec<bool>>,
) {
    if f.is_zero() {
        return;
    }
    if pos == sig_order.len() {
        debug_assert!(f.is_one(), "support is the current signal variables");
        out.push(code.clone());
        return;
    }
    let (v, j) = sig_order[pos];
    let (lo, hi) = if m.root_var(f) == Some(v) {
        (m.low(f), m.high(f))
    } else {
        (f, f)
    };
    code[j] = false;
    descend_codes(m, lo, sig_order, pos + 1, code, out);
    code[j] = true;
    descend_codes(m, hi, sig_order, pos + 1, code, out);
    code[j] = false;
}
