//! Unit tests for the STG layer, anchored to the paper's figures.

use petri::classify;

use crate::encoding::{csc_conflicts, encoding_conflicts, has_csc, has_usc};
use crate::examples::{micropipeline, toggle, vme_read, vme_read_csc, vme_read_write};
use crate::model::{SignalEdge, SignalKind, StgBuilder};
use crate::parse::{parse_g, write_g};
use crate::persistency::{is_persistent, persistency_violations, ViolationKind};
use crate::properties::check_implementability;
use crate::state_graph::{StateGraph, StgError};
use crate::waveform::{canonical_cycle, render_waveforms};

#[test]
fn vme_read_structure_fig3() {
    let stg = vme_read();
    assert_eq!(stg.num_signals(), 5);
    // Fig. 3 is a marked graph: no choice.
    let class = classify::classify(stg.net());
    assert!(class.marked_graph);
    assert!(class.free_choice);
    assert_eq!(stg.net().num_transitions(), 10);
}

#[test]
fn vme_read_state_graph_fig4() {
    let stg = vme_read();
    let sg = StateGraph::build(&stg).unwrap();
    // Fig. 4: the RG/SG of the READ cycle has 14 states.
    assert_eq!(sg.num_states(), 14);
    // Initial state: all signals low, DSr excited: "0*0000" in the paper's
    // <DSr,DTACK,LDTACK,LDS,D> order.
    assert_eq!(sg.plain_code_string(0), "00000");
    assert!(sg.code_string(&stg, 0).starts_with("0*"));
    // Consistency and determinism hold.
    assert!(sg.ts().is_deterministic());
}

#[test]
fn vme_read_csc_conflict_code_10110() {
    let stg = vme_read();
    let sg = StateGraph::build(&stg).unwrap();
    // §2.1: the two underlined conflict states share code 10110 in
    // <DSr,DTACK,LDTACK,LDS,D> order, with different LDS/D excitation.
    let conflicts = csc_conflicts(&stg, &sg);
    assert_eq!(conflicts.len(), 1, "exactly one CSC conflict pair");
    let c = &conflicts[0];
    let code: String = c.code.iter().map(|&b| if b { '1' } else { '0' }).collect();
    assert_eq!(code, "10110");
    let names: Vec<&str> = c
        .conflicting_signals
        .iter()
        .map(|&s| stg.signal_name(s))
        .collect();
    assert!(names.contains(&"LDS"), "LDS excitation differs: {names:?}");
    assert!(!has_usc(&stg, &sg));
    assert!(!has_csc(&stg, &sg));
}

#[test]
fn vme_read_is_persistent_but_lacks_csc() {
    let stg = vme_read();
    let report = check_implementability(&stg);
    assert!(report.bounded);
    assert!(report.consistent);
    assert!(report.persistent, "Fig. 3 is a marked graph: no disabling");
    assert!(!report.complete_state_coding);
    assert!(!report.is_implementable());
    assert!(report.deadlock_free);
}

#[test]
fn vme_read_csc_fig7() {
    let stg = vme_read_csc();
    let sg = StateGraph::build(&stg).unwrap();
    // Fig. 7: inserting csc0 yields 16 states and restores CSC.
    assert_eq!(sg.num_states(), 16);
    assert!(has_csc(&stg, &sg));
    let report = check_implementability(&stg);
    assert!(report.is_implementable(), "{report}");
}

#[test]
fn vme_read_write_fig5() {
    let stg = vme_read_write();
    let sg = StateGraph::build(&stg).unwrap();
    assert!(sg.num_states() > 14, "read+write explores both branches");
    // Choice places p0 and p3 exist (§1.5).
    let choices = classify::choice_places(stg.net());
    assert_eq!(choices.len(), 2);
    // The DSr+/DSw+ conflict is an input choice: persistency violations
    // exist but all are InputChoice.
    let violations = persistency_violations(&stg, &sg);
    assert!(violations
        .iter()
        .any(|v| v.kind == ViolationKind::InputChoice));
    assert!(is_persistent(&stg, &sg), "input choice is allowed");
    // Consistent and bounded.
    let report = check_implementability(&stg);
    assert!(report.bounded && report.consistent, "{report}");
}

#[test]
fn toggle_is_fully_implementable() {
    let report = check_implementability(&toggle());
    assert!(report.is_implementable(), "{report}");
    assert_eq!(report.num_states, 4);
}

#[test]
fn micropipeline_scales_and_stays_consistent() {
    for n in 1..4 {
        let stg = micropipeline(n);
        let sg = StateGraph::build(&stg).unwrap();
        assert!(sg.num_states() >= 4, "n={n}");
        assert!(sg.ts().deadlocks().is_empty(), "n={n}");
    }
}

#[test]
fn inconsistent_stg_detected() {
    // a+ followed by a+ again: inconsistent.
    let mut b = StgBuilder::new("bad");
    let a = b.add_signal("a", SignalKind::Input);
    let a1 = b.add_edge(a, SignalEdge::Rise);
    let a2 = b.add_edge(a, SignalEdge::Rise);
    b.connect(a1, a2);
    let p = b.connect(a2, a1);
    b.mark_place(p, 1);
    let stg = b.build();
    match StateGraph::build(&stg) {
        Err(StgError::InconsistentEdge { .. }) => {}
        other => panic!("expected inconsistency, got {other:?}"),
    }
}

#[test]
fn explicit_initial_values_respected() {
    let mut b = StgBuilder::new("init");
    let a = b.add_signal("a", SignalKind::Input);
    let a_m = b.add_edge(a, SignalEdge::Fall);
    let a_p = b.add_edge(a, SignalEdge::Rise);
    b.connect(a_m, a_p);
    let p = b.connect(a_p, a_m);
    b.mark_place(p, 1);
    b.set_initial_values(vec![true]);
    let stg = b.build();
    let sg = StateGraph::build(&stg).unwrap();
    assert!(sg.value(0, a));
}

#[test]
fn initial_value_inference_from_falling_edge() {
    // Same net, no explicit values: first edge is a-, so a starts at 1.
    let mut b = StgBuilder::new("init");
    let a = b.add_signal("a", SignalKind::Input);
    let a_m = b.add_edge(a, SignalEdge::Fall);
    let a_p = b.add_edge(a, SignalEdge::Rise);
    b.connect(a_m, a_p);
    let p = b.connect(a_p, a_m);
    b.mark_place(p, 1);
    let stg = b.build();
    let sg = StateGraph::build(&stg).unwrap();
    assert!(sg.value(0, a));
}

#[test]
fn parse_g_roundtrip_vme() {
    let stg = vme_read();
    let text = write_g(&stg);
    let parsed = parse_g(&text).unwrap();
    assert_eq!(parsed.num_signals(), stg.num_signals());
    assert_eq!(parsed.net().num_transitions(), stg.net().num_transitions());
    // Equivalent behaviour: same state-graph size and properties.
    let sg1 = StateGraph::build(&stg).unwrap();
    let sg2 = StateGraph::build(&parsed).unwrap();
    assert_eq!(sg1.num_states(), sg2.num_states());
    // Trace equivalence over label strings.
    let t1 = sg1.ts().map_labels(|&t| stg.label_string(t));
    let t2 = sg2.ts().map_labels(|&t| parsed.label_string(t));
    assert!(t1.trace_equivalent(&t2));
}

#[test]
fn parse_g_explicit_places_and_choice() {
    let text = "\
.model choice
.inputs a b
.outputs x
.graph
p0 a+ b+
a+ x+/1
b+ x+/2
x+/1 a-
x+/2 b-
a- x-/1
b- x-/2
x-/1 p0
x-/2 p0
.marking { p0 }
.end
";
    let stg = parse_g(text).unwrap();
    assert_eq!(stg.num_signals(), 3);
    let sg = StateGraph::build(&stg).unwrap();
    assert!(sg.num_states() >= 4);
}

#[test]
fn parse_g_instances() {
    let text = "\
.model inst
.inputs a
.outputs x
.graph
a+ x+/1
x+/1 a-
a- x-/1
x-/1 a+
.marking { <x-/1,a+> }
.end
";
    let stg = parse_g(text).unwrap();
    let sg = StateGraph::build(&stg).unwrap();
    assert_eq!(sg.num_states(), 4);
}

#[test]
fn parse_g_errors() {
    assert!(
        parse_g(".model x\n.graph\nfoo+ bar+\n.end\n").is_err(),
        "undeclared signal"
    );
    assert!(
        parse_g(".model x\n.inputs a\n.end\n").is_err(),
        "missing graph"
    );
    let bad_marking = ".model x\n.inputs a\n.graph\na+ a-\na- a+\n.marking { nosuch }\n.end\n";
    assert!(parse_g(bad_marking).is_err());
}

#[test]
fn waveforms_render_read_cycle() {
    let stg = vme_read();
    let sg = StateGraph::build(&stg).unwrap();
    let cycle = canonical_cycle(&sg, 32);
    assert_eq!(cycle.len(), 10, "one full READ cycle fires all 10 edges");
    let wave = render_waveforms(&stg, &sg, &cycle);
    // Five rows, one per signal.
    assert_eq!(wave.lines().count(), 5);
    // DSr rises then falls within the cycle.
    let dsr_row = wave.lines().find(|l| l.contains("DSr")).unwrap();
    assert!(dsr_row.contains("/~") && dsr_row.contains("\\_"));
}

#[test]
fn encoding_conflicts_listing_is_deterministic() {
    let stg = vme_read();
    let sg = StateGraph::build(&stg).unwrap();
    let a = encoding_conflicts(&stg, &sg);
    let b = encoding_conflicts(&stg, &sg);
    assert_eq!(a, b);
}

#[test]
fn label_strings() {
    let stg = vme_read_write();
    // Doubled signals print instances: there must be a "D+/2" somewhere.
    let labels: Vec<String> = stg
        .net()
        .transitions()
        .map(|t| stg.label_string(t))
        .collect();
    assert!(labels.iter().any(|l| l == "D+/2"), "{labels:?}");
    assert!(labels.iter().any(|l| l == "D+"), "{labels:?}");
}

#[test]
fn write_g_parse_g_roundtrip_read_write() {
    // The choice-rich Fig. 5 spec survives serialisation.
    let stg = vme_read_write();
    let text = write_g(&stg);
    let parsed = parse_g(&text).unwrap();
    let sg1 = StateGraph::build(&stg).unwrap();
    let sg2 = StateGraph::build(&parsed).unwrap();
    assert_eq!(sg1.num_states(), sg2.num_states());
    let t1 = sg1.ts().map_labels(|&t| stg.label_string(t));
    let t2 = sg2.ts().map_labels(|&t| parsed.label_string(t));
    assert!(t1.trace_equivalent(&t2));
}

#[test]
fn dummy_transitions_parse_and_run() {
    let text = "\
.model dummies
.inputs a
.outputs x
.dummy tau
.graph
a+ tau
tau x+
x+ a-
a- x-
x- a+
.marking { <x-,a+> }
.end
";
    let stg = parse_g(text).unwrap();
    let sg = StateGraph::build(&stg).unwrap();
    // 4 signal edges + 1 dummy = 5 states in the cycle.
    assert_eq!(sg.num_states(), 5);
    // The dummy does not change any code.
    let report = check_implementability(&stg);
    assert!(report.consistent);
}

#[test]
fn excitations_and_regions_of_initial_state() {
    let stg = vme_read();
    let sg = StateGraph::build(&stg).unwrap();
    let exc = sg.excitations(&stg, 0);
    assert_eq!(exc.len(), 1);
    let (_, sig, edge) = exc[0];
    assert_eq!(stg.signal_name(sig), "DSr");
    assert_eq!(edge, crate::SignalEdge::Rise);
}

mod state_space_backends {
    use super::*;
    use crate::state_space::{Backend, StateSpace};
    use crate::symbolic::SymbolicStateSpace;

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!("explicit".parse::<Backend>().unwrap(), Backend::Explicit);
        assert_eq!("symbolic".parse::<Backend>().unwrap(), Backend::Symbolic);
        assert!("bdd".parse::<Backend>().is_err());
        assert_eq!(Backend::Symbolic.to_string(), "symbolic");
        assert_eq!(Backend::default(), Backend::Explicit);
    }

    #[test]
    fn symbolic_space_matches_explicit_on_the_paper_examples() {
        for spec in [
            vme_read(),
            vme_read_csc(),
            vme_read_write(),
            micropipeline(2),
        ] {
            let explicit = StateGraph::build(&spec).unwrap();
            let symbolic = SymbolicStateSpace::build(&spec).unwrap();
            assert_eq!(StateSpace::num_states(&explicit), symbolic.num_states());
            assert_eq!(
                symbolic.stats().num_markings,
                StateSpace::num_states(&explicit) as u128
            );
            // Same initial state and code multiset.
            assert_eq!(
                StateSpace::plain_code_string(&explicit, 0),
                symbolic.plain_code_string(0)
            );
            let mut a: Vec<String> = (0..StateSpace::num_states(&explicit))
                .map(|i| StateSpace::plain_code_string(&explicit, i))
                .collect();
            let mut b: Vec<String> = (0..symbolic.num_states())
                .map(|i| symbolic.plain_code_string(i))
                .collect();
            a.sort();
            b.sort();
            assert_eq!(a, b);
            // The transition structures are trace-equivalent automata.
            let ta = StateSpace::ts(&explicit).map_labels(|&t| spec.label_string(t));
            let tb = symbolic.ts().map_labels(|&t| spec.label_string(t));
            assert!(ta.trace_equivalent(&tb), "{}", spec.name());
        }
    }

    #[test]
    fn property_checks_are_backend_independent() {
        for spec in [vme_read(), vme_read_csc(), vme_read_write()] {
            let explicit = Backend::Explicit.build(&spec).unwrap();
            let symbolic = Backend::Symbolic.build(&spec).unwrap();
            assert_eq!(
                csc_conflicts(&spec, &*explicit).len(),
                csc_conflicts(&spec, &*symbolic).len()
            );
            assert_eq!(
                is_persistent(&spec, &*explicit),
                is_persistent(&spec, &*symbolic)
            );
            assert_eq!(has_usc(&spec, &*explicit), has_usc(&spec, &*symbolic));
        }
    }

    #[test]
    fn symbolic_space_respects_the_state_limit() {
        let spec = micropipeline(3); // 500 states
        assert!(matches!(
            SymbolicStateSpace::build_bounded(&spec, 100),
            Err(StgError::Reach(petri::reach::ReachError::StateLimit(100)))
        ));
        assert!(SymbolicStateSpace::build_bounded(&spec, 500).is_ok());
    }

    #[test]
    fn symbolic_space_detects_unsafe_nets() {
        // x+ produces into an already-marked place: not safe.
        let mut b = StgBuilder::new("unsafe");
        let x = b.add_signal("x", SignalKind::Output);
        let xp = b.add_edge(x, SignalEdge::Rise);
        let xm = b.add_edge(x, SignalEdge::Fall);
        let p = b.add_place("p", 1);
        let q = b.add_place("q", 1);
        b.arc_pt(p, xp);
        b.arc_tp(xp, q);
        b.arc_pt(q, xm);
        b.arc_tp(xm, p);
        let spec = b.build();
        assert!(matches!(
            StateGraph::build(&spec),
            Err(StgError::Reach(petri::reach::ReachError::BoundExceeded(_)))
        ));
        assert!(matches!(
            SymbolicStateSpace::build(&spec),
            Err(StgError::Reach(petri::reach::ReachError::BoundExceeded(_)))
        ));
    }
}

mod canon {
    use std::str::FromStr;

    use crate::canon::{canonical_text, digest_bytes, keyed_digest, stg_digest, Digest};
    use crate::examples::{toggle, vme_read, vme_read_csc, vme_read_write};
    use crate::model::{SignalEdge, SignalKind, StgBuilder};
    use crate::parse::{parse_g, write_g};

    #[test]
    fn sha256_known_answers() {
        assert_eq!(
            digest_bytes(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            digest_bytes(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        // Multi-block message (> 64 bytes) exercises the buffering path.
        let long = [b'a'; 200];
        let mut split = crate::canon::Sha256::new();
        split.update(&long[..3]);
        split.update(&long[3..70]);
        split.update(&long[70..]);
        assert_eq!(split.finish(), digest_bytes(&long));
    }

    #[test]
    fn digest_hex_round_trips() {
        let d = stg_digest(&toggle());
        let parsed = Digest::from_str(&d.to_hex()).expect("hex parses");
        assert_eq!(parsed, d);
        assert!(Digest::from_str("xyz").is_err());
    }

    #[test]
    fn round_trip_through_g_format_preserves_digest() {
        for spec in [vme_read(), vme_read_csc(), vme_read_write(), toggle()] {
            let reparsed = parse_g(&write_g(&spec)).expect("write_g output parses");
            assert_eq!(
                canonical_text(&spec),
                canonical_text(&reparsed),
                "canonical text of {} survives serialise → parse",
                spec.name()
            );
            assert_eq!(stg_digest(&spec), stg_digest(&reparsed));
        }
    }

    /// Two builds of the same toggle circuit with places, transitions and
    /// signals inserted in different orders.
    fn toggle_variants() -> (crate::Stg, crate::Stg) {
        let first = {
            let mut b = StgBuilder::new("t");
            let a = b.add_signal("a", SignalKind::Input);
            let x = b.add_signal("x", SignalKind::Output);
            let ap = b.add_edge(a, SignalEdge::Rise);
            let xp = b.add_edge(x, SignalEdge::Rise);
            let am = b.add_edge(a, SignalEdge::Fall);
            let xm = b.add_edge(x, SignalEdge::Fall);
            b.connect(ap, xp);
            b.connect(xp, am);
            b.connect(am, xm);
            let p = b.connect(xm, ap);
            b.mark_place(p, 1);
            b.build()
        };
        let second = {
            let mut b = StgBuilder::new("t");
            let x = b.add_signal("x", SignalKind::Output);
            let a = b.add_signal("a", SignalKind::Input);
            let xm = b.add_edge(x, SignalEdge::Fall);
            let am = b.add_edge(a, SignalEdge::Fall);
            let xp = b.add_edge(x, SignalEdge::Rise);
            let ap = b.add_edge(a, SignalEdge::Rise);
            let p = b.connect(xm, ap);
            b.mark_place(p, 1);
            b.connect(am, xm);
            b.connect(xp, am);
            b.connect(ap, xp);
            b.build()
        };
        (first, second)
    }

    #[test]
    fn digest_stable_under_insertion_reordering() {
        let (first, second) = toggle_variants();
        assert_eq!(canonical_text(&first), canonical_text(&second));
        assert_eq!(stg_digest(&first), stg_digest(&second));
    }

    #[test]
    fn digest_differs_on_semantic_edits() {
        let base = toggle();
        let base_digest = stg_digest(&base);

        // Different marking.
        let remarked = {
            let mut b = toggle().into_builder();
            let extra = b.add_place("extra", 1);
            let t = b.net().transitions().next().expect("has transitions");
            b.arc_pt(extra, t);
            b.build()
        };
        assert_ne!(
            stg_digest(&remarked),
            base_digest,
            "extra place changes hash"
        );

        // Different signal kind (input vs output is a semantic difference).
        let text = write_g(&base);
        let flipped = text.replace(".inputs a", ".outputs a");
        if flipped != text {
            let respec = parse_g(&flipped).expect("still parses");
            assert_ne!(stg_digest(&respec), base_digest, "signal kind changes hash");
        }

        // Different model name.
        let renamed =
            parse_g(&text.replace(&format!(".model {}", base.name()), ".model other-name"))
                .expect("renamed spec parses");
        assert_ne!(stg_digest(&renamed), base_digest, "model name changes hash");
    }

    #[test]
    fn keyed_digest_separates_configurations() {
        let spec = vme_read();
        let plain = stg_digest(&spec);
        let a = keyed_digest(&spec, &["explicit", "complex"]);
        let b = keyed_digest(&spec, &["symbolic", "complex"]);
        assert_ne!(plain, a);
        assert_ne!(a, b);
        // Length-prefixing means concatenation cannot collide.
        assert_ne!(
            keyed_digest(&spec, &["ab", "c"]),
            keyed_digest(&spec, &["a", "bc"])
        );
        assert_eq!(a, keyed_digest(&spec, &["explicit", "complex"]));
    }
}
