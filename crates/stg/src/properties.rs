//! Aggregated implementability report (§2.1: boundedness, consistency,
//! complete state coding, persistency — *"If all the above properties are
//! satisfied, then the STG specification can be implemented as a, so
//! called, speed-independent circuit"*).

use std::fmt;

use crate::encoding::{csc_conflict_pair_count, has_usc};
use crate::model::Stg;
use crate::persistency::blocking_violation_count;
use crate::state_graph::{StateGraph, StgError};
use crate::state_space::{Backend, StateSpace};

/// The per-property outcome of the implementability analysis.
#[derive(Debug, Clone)]
pub struct ImplementabilityReport {
    /// The net is safe and its state space finite (boundedness).
    pub bounded: bool,
    /// Rising/falling edges alternate per signal (consistency). `false`
    /// also covers unbounded nets where the check could not run.
    pub consistent: bool,
    /// Error describing why boundedness/consistency failed, if it did.
    pub error: Option<StgError>,
    /// Number of states in the state graph (0 when it could not be built).
    pub num_states: usize,
    /// No two states share a binary code.
    pub unique_state_coding: bool,
    /// States sharing a code agree on non-input excitations.
    pub complete_state_coding: bool,
    /// Number of CSC-violating state pairs.
    pub csc_conflict_pairs: usize,
    /// No non-input transition is ever disabled; inputs only disabled by
    /// inputs.
    pub persistent: bool,
    /// Number of blocking persistency violations.
    pub persistency_violations: usize,
    /// No reachable deadlock.
    pub deadlock_free: bool,
}

impl ImplementabilityReport {
    /// `true` if a speed-independent implementation exists without further
    /// transformation (all of §2.1's properties hold).
    #[must_use]
    pub fn is_implementable(&self) -> bool {
        self.bounded
            && self.consistent
            && self.complete_state_coding
            && self.persistent
            && self.deadlock_free
    }
}

impl fmt::Display for ImplementabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let yes_no = |b: bool| if b { "yes" } else { "NO" };
        writeln!(f, "bounded (safe):        {}", yes_no(self.bounded))?;
        writeln!(f, "consistent:            {}", yes_no(self.consistent))?;
        writeln!(f, "states:                {}", self.num_states)?;
        writeln!(
            f,
            "unique state coding:   {}",
            yes_no(self.unique_state_coding)
        )?;
        writeln!(
            f,
            "complete state coding: {} ({} conflict pair(s))",
            yes_no(self.complete_state_coding),
            self.csc_conflict_pairs
        )?;
        writeln!(
            f,
            "persistent:            {} ({} blocking violation(s))",
            yes_no(self.persistent),
            self.persistency_violations
        )?;
        writeln!(f, "deadlock-free:         {}", yes_no(self.deadlock_free))?;
        write!(
            f,
            "=> implementable as a speed-independent circuit: {}",
            yes_no(self.is_implementable())
        )
    }
}

/// Runs the full §2.1 property suite on an STG with the explicit backend.
#[must_use]
pub fn check_implementability(stg: &Stg) -> ImplementabilityReport {
    match StateGraph::build(stg) {
        Ok(sg) => report_from_sg(stg, &sg),
        Err(e) => failure_report(e),
    }
}

/// Runs the full §2.1 property suite with the chosen state-space backend.
#[must_use]
pub fn check_implementability_with(stg: &Stg, backend: Backend) -> ImplementabilityReport {
    match backend.build(stg) {
        Ok(space) => report_from_sg(stg, &*space),
        Err(e) => failure_report(e),
    }
}

/// The all-failed report for a specification whose state space could not
/// be built. Exposed so callers already holding the build error (e.g. the
/// pipeline's check stage) need not rebuild the space to produce it.
#[must_use]
pub fn failure_report(e: StgError) -> ImplementabilityReport {
    ImplementabilityReport {
        bounded: !matches!(e, StgError::Reach(_)),
        consistent: false,
        error: Some(e),
        num_states: 0,
        unique_state_coding: false,
        complete_state_coding: false,
        csc_conflict_pairs: 0,
        persistent: false,
        persistency_violations: 0,
        deadlock_free: false,
    }
}

/// The report for an already-built state space (any backend).
///
/// Every verdict and count is a set-level query — code/marking counting,
/// excitation-class refinement, per-pair disabling counts, a symbolic
/// deadlock check — so the resident-BDD backend produces the full report
/// without enumerating a single state.
#[must_use]
pub fn report_from_sg<S: StateSpace + ?Sized>(stg: &Stg, sg: &S) -> ImplementabilityReport {
    let usc = has_usc(stg, sg);
    let csc_pairs = if usc {
        0
    } else {
        csc_conflict_pair_count(stg, sg)
    };
    let violations = blocking_violation_count(stg, sg);
    ImplementabilityReport {
        bounded: true,
        consistent: true,
        error: None,
        num_states: sg.num_states(),
        unique_state_coding: usc,
        complete_state_coding: csc_pairs == 0,
        csc_conflict_pairs: csc_pairs,
        persistent: violations == 0,
        persistency_violations: violations,
        deadlock_free: !sg.has_deadlock(),
    }
}
