use stg::{examples, Backend};

#[test]
fn smoke_vme_read() {
    let spec = examples::vme_read();
    let explicit = Backend::Explicit.build(&spec).unwrap();
    let set = Backend::SymbolicSet.build(&spec).unwrap();
    assert_eq!(set.num_states(), explicit.num_states());
    assert_eq!(set.marking_count(), 14);
    assert_eq!(set.initial_values(), explicit.initial_values());
    let mut a: Vec<String> = (0..explicit.num_states())
        .map(|i| explicit.plain_code_string(i))
        .collect();
    let mut b: Vec<String> = (0..set.num_states())
        .map(|i| set.plain_code_string(i))
        .collect();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    for i in 0..set.num_states() {
        assert_eq!(set.decode_code(i), set.code(i).to_vec(), "state {i}");
        assert_eq!(&set.decode_marking(i), set.marking(i), "state {i}");
    }
    for s in spec.signals() {
        for value in [false, true] {
            let sym = set.set_count(&set.value_region(s, value));
            let exp = explicit.set_count(&explicit.value_region(s, value));
            assert_eq!(sym, exp, "value region {s:?}={value}");
        }
        for edge in [stg::SignalEdge::Rise, stg::SignalEdge::Fall] {
            let sym = set.set_count(&set.excitation_region(&spec, s, edge));
            let exp = explicit.set_count(&explicit.excitation_region(&spec, s, edge));
            assert_eq!(sym, exp, "excitation region {s:?}{edge}");
        }
    }
    assert_eq!(set.has_deadlock(), explicit.has_deadlock());
    assert_eq!(set.distinct_code_count(), explicit.distinct_code_count());
    let mut ec: Vec<Vec<bool>> = explicit
        .duplicate_code_classes()
        .into_iter()
        .map(|(c, _)| c)
        .collect();
    let mut sc: Vec<Vec<bool>> = set
        .duplicate_code_classes()
        .into_iter()
        .map(|(c, _)| c)
        .collect();
    ec.sort();
    sc.sort();
    assert_eq!(ec, sc);
}
