//! Span-tree construction for observed flows (the `--trace` artifact).
//!
//! [`TraceBuilder`] is a [`FlowObserver`]: plugged into
//! [`crate::run_cached_with`], it records each stage's wall time and
//! event slice as the pipeline reports them, then [`TraceBuilder::finish`]
//! folds the log into one [`telemetry::Span`] tree — a `flow` root with
//! one child per stage (`check`, `csc`, `synthesize`, `verify`, or a
//! single `cache` stage on a full hit) and, under `synthesize`, one
//! grandchild per CSC candidate tried.
//!
//! Every span carries the deterministic [`flow_metrics`] counters of its
//! event slice; wall times and advisory counters ride alongside but are
//! dropped by [`telemetry::Span::render_deterministic`], which is the
//! projection the parity suite pins byte-identical across sweep thread
//! counts.

use std::time::Instant;

use telemetry::{Counters, Span};

use crate::pipeline::{flow_metrics, FlowEvent, FlowObserver};

/// Builds a span tree from an observed flow run.
#[derive(Debug)]
pub struct TraceBuilder {
    started: Instant,
    last: Instant,
    stages: Vec<(String, Vec<FlowEvent>, u64)>,
}

impl Default for TraceBuilder {
    fn default() -> Self {
        Self::new()
    }
}

fn to_ms(elapsed: std::time::Duration) -> u64 {
    u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX)
}

impl TraceBuilder {
    #[must_use]
    pub fn new() -> Self {
        let now = Instant::now();
        TraceBuilder {
            started: now,
            last: now,
            stages: Vec::new(),
        }
    }

    /// Folds the observed stages into the final span tree. `counters`
    /// and `advisory` become the root's metric sets — pass the
    /// summary's deterministic metrics and the run's advisory counters
    /// on success, or `flow_metrics(error.events())` and an empty set
    /// on failure.
    #[must_use]
    pub fn finish(self, counters: Counters, advisory: Counters) -> Span {
        let mut root = Span::new("flow");
        root.wall_ms = to_ms(self.started.elapsed());
        root.counters = counters;
        root.advisory = advisory;
        for (name, events, wall_ms) in self.stages {
            let mut stage = Span::new(&name);
            stage.wall_ms = wall_ms;
            stage.counters = flow_metrics(&events);
            if name == "synthesize" {
                for child in candidate_spans(&events) {
                    stage.push_child(child);
                }
            }
            root.push_child(stage);
        }
        root
    }
}

impl FlowObserver for TraceBuilder {
    fn stage(&mut self, stage: &str, events: &[FlowEvent]) {
        let wall_ms = to_ms(self.last.elapsed());
        self.last = Instant::now();
        self.stages
            .push((stage.to_owned(), events.to_vec(), wall_ms));
    }
}

/// Partitions a synthesize-stage event slice into per-candidate child
/// spans: each [`FlowEvent::CandidateRejected`] closes one candidate's
/// group (rejection event included), and the remainder — the winning
/// candidate, possibly led by its [`FlowEvent::CscApplied`] — becomes
/// the accepted span. Wall time is not tracked per candidate; the
/// counters are deterministic, so these spans survive the
/// [`telemetry::Span::render_deterministic`] projection.
fn candidate_spans(events: &[FlowEvent]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut group: Vec<FlowEvent> = Vec::new();
    for event in events {
        group.push(event.clone());
        if let FlowEvent::CandidateRejected { index, .. } = event {
            let mut span = Span::new(&format!("candidate {index} (rejected)"));
            span.counters = flow_metrics(&group);
            spans.push(span);
            group.clear();
        }
    }
    if !group.is_empty() {
        let mut span = Span::new(&format!("candidate {} (accepted)", spans.len()));
        span.counters = flow_metrics(&group);
        spans.push(span);
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::TraceBuilder;
    use crate::pipeline::{run_cached_with, SynthesisOptions};

    #[test]
    fn trace_tree_covers_every_stage_with_counters() {
        let options = SynthesisOptions::default();
        let mut trace = TraceBuilder::new();
        let run = run_cached_with(&stg::examples::vme_read(), &options, None, &mut trace)
            .expect("vme read synthesises");
        let span = trace.finish(run.summary.metrics.clone(), run.advisory.clone());
        assert_eq!(span.name, "flow");
        let names: Vec<&str> = span.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["check", "csc", "synthesize", "verify"]);
        assert_eq!(
            span.counters.get("states_explored"),
            Some(run.summary.metrics.get("states_explored").unwrap())
        );
        let check = &span.children[0];
        assert!(check.counters.get("states").is_some());
        let synthesize = &span.children[2];
        assert!(
            !synthesize.children.is_empty(),
            "synthesize stage has per-candidate spans"
        );
        assert!(synthesize
            .children
            .last()
            .unwrap()
            .name
            .ends_with("(accepted)"));
        // The artifact renders; the deterministic projection drops
        // wall_ms and advisory but keeps every span.
        let full = span.render();
        let det = span.render_deterministic();
        assert!(full.contains("wall_ms"));
        assert!(!det.contains("wall_ms"));
        assert!(det.contains("\"name\":\"verify\""));
    }
}
