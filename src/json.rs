//! A minimal, dependency-free JSON value: parser and deterministic
//! renderer.
//!
//! The workspace builds offline (no `serde`), yet three layers need
//! structured interchange: the synthesis service's newline-delimited
//! protocol, the on-disk result cache, and the CLI's `--json` output.
//! This module gives them one shared representation.
//!
//! Objects preserve insertion order and the renderer is deterministic
//! (no HashMap iteration), so `parse(render(v)) == v` and cache entries
//! are byte-stable — which the content checksums rely on.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (f64, as in JSON).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// A number from a usize (exact for values below 2⁵³).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn num(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// A string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member of an object, if this is an object and the key exists.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as usize, if this is a non-negative integer.
    #[must_use]
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The numeric payload as u64, if this is a non-negative integer.
    #[must_use]
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compact, deterministic JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) =>
            {
                #[allow(clippy::cast_possible_truncation)]
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    let _ = fmt::Write::write_fmt(out, format_args!("{}", *n as i64));
                } else {
                    let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (one value, optionally surrounded by
    /// whitespace).
    ///
    /// # Errors
    ///
    /// A human-readable message with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// JSON string escaping into a buffer (quotes included).
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escapes a string as a standalone JSON string literal.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(s, &mut out);
    out
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err("unexpected end of input".to_owned());
    };
    match b {
        b'n' => parse_literal(bytes, pos, "null", Json::Null),
        b't' => parse_literal(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_literal(bytes, pos, "false", Json::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        other => Err(format!("unexpected byte {:?} at {pos}", other as char)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos} (expected {lit})"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".to_owned());
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_owned());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_owned())?;
                        *pos += 4;
                        // Surrogate pairs: decode \uD800-\uDBFF + \uDC00-\uDFFF.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                let hex2 = bytes
                                    .get(*pos + 2..*pos + 6)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or("truncated surrogate pair")?;
                                let low = u32::from_str_radix(hex2, 16)
                                    .map_err(|_| "bad surrogate".to_owned())?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(
                                        "high surrogate not followed by a low surrogate".to_owned()
                                    );
                                }
                                *pos += 6;
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                return Err("lone high surrogate".to_owned());
                            }
                        } else {
                            code
                        };
                        out.push(char::from_u32(c).ok_or("invalid \\u code point")?);
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            _ => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Json;

    #[test]
    fn round_trips() {
        let v = Json::obj(vec![
            ("name", Json::str("vme\nread \"quoted\"")),
            ("states", Json::num(20)),
            ("ok", Json::Bool(true)),
            ("missing", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::num(1), Json::str("two"), Json::Bool(false)]),
            ),
        ]);
        let text = v.render();
        let back = Json::parse(&text).expect("own output parses");
        assert_eq!(back, v);
        assert_eq!(back.render(), text, "deterministic rendering");
        assert_eq!(back.get("states").and_then(Json::as_usize), Some(20));
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , -2.5 , \"\\u0041\\n\" ] } ").expect("parses");
        let arr = v.get("a").and_then(Json::as_arr).expect("array");
        assert_eq!(arr[0].as_usize(), Some(1));
        assert_eq!(arr[2].as_str(), Some("A\n"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            // Surrogate-pair abuse: lone high, non-surrogate low, lone low.
            "\"\\uD800\"",
            "\"\\uD800\\u0041\"",
            "\"\\uDC00\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
        // A well-formed pair still decodes.
        assert_eq!(
            Json::parse("\"\\uD83D\\uDE00\"").expect("emoji parses"),
            Json::Str("\u{1F600}".to_owned())
        );
    }
}
