//! The staged synthesis pipeline: the §3 flow (property checking → CSC
//! resolution → synthesis → verification) as a typed state machine over
//! pluggable state-space backends.
//!
//! [`Synthesis`] is the entry point. Configure it with the builder
//! methods, then either advance stage by stage —
//!
//! ```
//! use asyncsynth::{Backend, Synthesis};
//!
//! let checked = Synthesis::new(stg::examples::vme_read_csc())
//!     .backend(Backend::Symbolic)
//!     .check()?;
//! assert!(checked.report().is_implementable());
//! let verified = checked.resolve_csc()?.synthesize()?.verify()?;
//! assert!(verified.verification.passed());
//! # Ok::<(), asyncsynth::PipelineError>(())
//! ```
//!
//! — or run everything at once with [`Synthesis::run`]. Each stage
//! ([`Checked`], [`CscResolved`], [`Synthesized`], [`Verified`]) exposes
//! its artifacts (implementability report, candidate CSC transformations,
//! equations, netlist, verification outcome) and the accumulated
//! [`FlowEvent`] log, and hands its state space, report and verification
//! probe forward for reuse: the CSC-clean fast path recomputes nothing,
//! the check stage's space seeds the CSC candidate sweeps, and every
//! candidate the synthesiser may try carries its validated space — no
//! stage builds the same space twice. [`run_batch`] synthesises many
//! controllers concurrently on scoped threads.

use std::fmt;

use stg::properties::ImplementabilityReport;
use stg::{StateSpace, Stg};
use synth::complex_gate::{synthesize_complex_gates, ComplexGateCircuit};
use synth::csc::CscResolutionWithSpace;
pub use synth::csc::{SweepOptions, SweepStats};
use synth::decompose::{decompose, resubstitute, DecomposedCircuit};
use synth::latch_arch::{synthesize_latch_circuit, LatchCircuit, LatchStyle};
use synth::library::{map_to_library, Library, Mapping};
use synth::NetId;
use verify::{IncrementalVerifier, VerificationReport};
pub use verify::{VerifyOptions, VerifyStrategy};

pub use stg::Backend;

/// Target implementation architecture (§3.2 / Fig. 8 / Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Architecture {
    /// One atomic complex gate per signal (§3.2).
    #[default]
    ComplexGate,
    /// Set/reset networks + Muller C-element (Fig. 8a).
    CElement,
    /// Set/reset networks + reset-dominant RS latch (Fig. 8b).
    RsLatch,
    /// Fan-in-bounded decomposition with hazard repair (Fig. 9).
    Decomposed,
}

impl Architecture {
    /// The architecture's canonical CLI/protocol name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Architecture::ComplexGate => "complex",
            Architecture::CElement => "celement",
            Architecture::RsLatch => "rs",
            Architecture::Decomposed => "decomposed",
        }
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Architecture {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "complex" => Ok(Architecture::ComplexGate),
            "celement" => Ok(Architecture::CElement),
            "rs" => Ok(Architecture::RsLatch),
            "decomposed" => Ok(Architecture::Decomposed),
            other => Err(format!(
                "unknown architecture {other:?} (expected complex|celement|rs|decomposed)"
            )),
        }
    }
}

/// How CSC conflicts are resolved when the input specification has them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CscStrategy {
    /// Try state-signal insertion first, fall back to concurrency
    /// reduction (§2.1 lists both methods).
    #[default]
    Auto,
    /// Only state-signal insertion (Fig. 7).
    SignalInsertion,
    /// Only concurrency reduction.
    ConcurrencyReduction,
    /// Fail if CSC does not hold.
    Fail,
}

impl CscStrategy {
    /// The strategy's canonical CLI/protocol name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CscStrategy::Auto => "auto",
            CscStrategy::SignalInsertion => "insertion",
            CscStrategy::ConcurrencyReduction => "reduction",
            CscStrategy::Fail => "fail",
        }
    }
}

impl fmt::Display for CscStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for CscStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(CscStrategy::Auto),
            "insertion" => Ok(CscStrategy::SignalInsertion),
            "reduction" => Ok(CscStrategy::ConcurrencyReduction),
            "fail" => Ok(CscStrategy::Fail),
            other => Err(format!(
                "unknown csc strategy {other:?} (expected auto|insertion|reduction|fail)"
            )),
        }
    }
}

/// Options shared by [`Synthesis`] and [`run_batch`].
#[derive(Debug, Clone, Default)]
pub struct SynthesisOptions {
    /// State-space engine used by every stage.
    pub backend: Backend,
    /// Target architecture.
    pub architecture: Architecture,
    /// CSC resolution strategy.
    pub csc: CscStrategy,
    /// CSC candidate-sweep engine configuration (worker threads,
    /// per-candidate state bound, conflict-locality pruning). The
    /// thread count never changes the flow's output and stays out of
    /// cache keys; the bound (can change results) and pruning (changes
    /// the diagnostic counters in the event log) both participate.
    pub sweep: SweepOptions,
    /// Fan-in bound for [`Architecture::Decomposed`] (default 2, the
    /// two-input library of Fig. 9).
    pub max_fanin: Option<usize>,
    /// Skip the final speed-independence verification (it is exhaustive).
    pub skip_verification: bool,
    /// Verification engine configuration (composed-state bound,
    /// spec-tracking strategy, memoising incremental mode). The
    /// strategy and the incremental flag never change the flow's output
    /// (`tests/verify_parity.rs` asserts byte-identical flows) and stay
    /// out of cache keys; the bound (a limit hit changes results)
    /// participates.
    pub verify: VerifyOptions,
}

/// Errors the pipeline can report.
#[derive(Debug)]
pub enum PipelineError {
    /// The specification failed a §2.1 implementability property that no
    /// automatic transformation fixes (unbounded, inconsistent,
    /// non-persistent, deadlocking).
    NotImplementable(Box<ImplementabilityReport>),
    /// CSC resolution failed under the requested strategy. Carries the
    /// diagnostic log up to the failure — including the sweep events
    /// whose counters say how many candidates were pruned and, more
    /// importantly, how many were skipped because their state space
    /// exceeded [`SweepOptions::bound`]: "no resolution" with
    /// bound-skipped candidates means raising the bound may find one.
    CscUnresolved {
        /// The diagnostic log up to the failure.
        events: Vec<FlowEvent>,
    },
    /// Synthesis failed (carries the underlying message).
    Synthesis(String),
    /// The synthesised circuit failed verification.
    VerificationFailed(Box<VerificationReport>),
    /// Every CSC candidate failed synthesis or verification. Carries the
    /// last candidate's error and the accumulated event log — including
    /// one [`FlowEvent::CandidateRejected`] per candidate, so the
    /// per-candidate diagnostics survive the failure.
    CandidatesExhausted {
        /// The error from the last candidate tried.
        last: Box<PipelineError>,
        /// The full diagnostic log up to the failure.
        events: Vec<FlowEvent>,
    },
    /// The run was cancelled between stages (service job cancellation —
    /// see [`FlowObserver::cancelled`]).
    Cancelled,
}

impl PipelineError {
    /// The diagnostic log accumulated before the failure, for the
    /// variants that carry one (empty for the others). Lets consumers —
    /// notably the corpus ledger — derive the deterministic operation
    /// counters of failed flows via [`flow_metrics`].
    #[must_use]
    pub fn events(&self) -> &[FlowEvent] {
        match self {
            PipelineError::CscUnresolved { events }
            | PipelineError::CandidatesExhausted { events, .. } => events,
            _ => &[],
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::NotImplementable(r) => {
                write!(f, "specification not implementable:\n{r}")
            }
            PipelineError::CscUnresolved { events } => {
                write!(f, "could not resolve CSC conflicts")?;
                let skipped: usize = events
                    .iter()
                    .map(|e| match e {
                        FlowEvent::CscSweep { stats, .. } => stats.skipped_by_bound,
                        _ => 0,
                    })
                    .sum();
                if skipped > 0 {
                    write!(
                        f,
                        " ({skipped} candidate(s) exceeded the state bound — \
                         a higher --csc-bound may find a resolution)"
                    )?;
                }
                Ok(())
            }
            PipelineError::Synthesis(m) => write!(f, "synthesis failed: {m}"),
            PipelineError::VerificationFailed(r) => {
                write!(f, "verification failed: {}", r.summary())
            }
            PipelineError::CandidatesExhausted { last, events } => {
                let rejected = events
                    .iter()
                    .filter(|e| matches!(e, FlowEvent::CandidateRejected { .. }))
                    .count();
                write!(
                    f,
                    "all {rejected} CSC candidate(s) failed; last error: {last}"
                )?;
                // A bounded verification is inconclusive, not a proven
                // failure — say so instead of letting the two blur.
                let bounded = events.iter().find_map(|e| match e {
                    FlowEvent::VerificationBounded { bound, .. } => Some(*bound),
                    _ => None,
                });
                if let Some(bound) = bounded {
                    write!(
                        f,
                        " (verification hit the state bound {bound} — inconclusive; \
                         raise --verify-bound)"
                    )?;
                }
                Ok(())
            }
            PipelineError::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Which §2.1 method produced a CSC transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CscKind {
    /// A fresh internal state signal was inserted (Fig. 7).
    SignalInsertion,
    /// An ordering arc removed the conflicting states.
    ConcurrencyReduction,
    /// A greedy mix of both methods (multi-conflict controllers).
    Mixed,
}

impl fmt::Display for CscKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CscKind::SignalInsertion => write!(f, "signal insertion"),
            CscKind::ConcurrencyReduction => write!(f, "concurrency reduction"),
            CscKind::Mixed => write!(f, "mixed"),
        }
    }
}

impl std::str::FromStr for CscKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "signal insertion" => Ok(CscKind::SignalInsertion),
            "concurrency reduction" => Ok(CscKind::ConcurrencyReduction),
            "mixed" => Ok(CscKind::Mixed),
            other => Err(format!("unknown csc kind {other:?}")),
        }
    }
}

/// A structured description of an applied CSC transformation.
#[derive(Debug, Clone)]
pub struct CscTransformation {
    /// The method used.
    pub kind: CscKind,
    /// Human-readable details (which transitions were split / ordered).
    pub description: String,
    /// State count of the transformed specification's state space.
    pub num_states: usize,
}

impl fmt::Display for CscTransformation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} states): {}",
            self.kind, self.num_states, self.description
        )
    }
}

/// Outcome of the verification stage — three-valued so callers can
/// distinguish "checked and passed" from "deliberately skipped" from
/// "not reached yet".
#[derive(Debug, Clone)]
pub enum Verification {
    /// Verification ran and the circuit is speed-independent.
    Passed(VerificationReport),
    /// Verification was skipped on request
    /// ([`SynthesisOptions::skip_verification`]).
    Skipped,
    /// Verification has not run (yet): the outcome of querying a
    /// [`Synthesized`] stage whose probe was skipped, before
    /// [`Synthesized::verify`] finalises it.
    NotRun,
}

impl Verification {
    /// `true` only when verification ran and passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        matches!(self, Verification::Passed(_))
    }

    /// The report, when verification ran.
    #[must_use]
    pub fn report(&self) -> Option<&VerificationReport> {
        match self {
            Verification::Passed(r) => Some(r),
            _ => None,
        }
    }
}

/// Structured diagnostics emitted by the pipeline stages, replacing the
/// ad-hoc strings of the legacy `run_flow` API.
#[derive(Debug, Clone)]
pub enum FlowEvent {
    /// A state space was built.
    StateSpaceBuilt {
        /// The backend that built it.
        backend: Backend,
        /// Number of states.
        num_states: usize,
    },
    /// The §2.1 property suite ran.
    PropertiesChecked {
        /// All properties hold without transformation.
        implementable: bool,
        /// Number of CSC-violating state pairs.
        csc_conflicts: usize,
    },
    /// A CSC candidate sweep ran; how its grid was cut down. The
    /// counters are deterministic (independent of the sweep's thread
    /// count), and `stats.skipped_by_bound` surfaces candidates whose
    /// state space exceeded [`SweepOptions::bound`] — they are reported
    /// here, never silently dropped.
    CscSweep {
        /// Which search swept (insertion grid, ordering arcs, mixed).
        kind: CscKind,
        /// The engine's counters.
        stats: SweepStats,
    },
    /// CSC candidates were gathered under a strategy.
    CscCandidates {
        /// The strategy used.
        strategy: CscStrategy,
        /// How many candidate transformations were found.
        count: usize,
    },
    /// A CSC transformation was applied to the specification.
    CscApplied(CscTransformation),
    /// A candidate was rejected during synthesis-with-backtracking.
    CandidateRejected {
        /// Index into [`CscResolved::candidates`].
        index: usize,
        /// Why the candidate failed.
        reason: String,
    },
    /// Logic equations were derived and minimised.
    EquationsDerived {
        /// One equation per non-input signal.
        count: usize,
    },
    /// A circuit was produced in the target architecture.
    CircuitSynthesized {
        /// The architecture.
        architecture: Architecture,
        /// Gate count of the netlist.
        gates: usize,
        /// Prime implicants generated by the two-level minimiser while
        /// deriving this candidate's logic (equations, latch covers,
        /// decomposition and resubstitution included) — a deterministic
        /// operation counter for the synthesis stage.
        primes: u64,
    },
    /// The netlist was mapped onto the technology library.
    LibraryMapped {
        /// Number of mapped cells.
        cells: usize,
    },
    /// Speed-independence verification passed.
    VerificationPassed {
        /// Composed states explored by the Muller-model checker.
        states_explored: usize,
    },
    /// Verification was skipped on request.
    VerificationSkipped,
    /// A verification run hit its composed-state bound
    /// ([`VerifyOptions::bound`]): the run is *bounded* — inconclusive
    /// within the budget — which this event keeps distinguishable from
    /// a genuine hazard/conformance failure (the report still carries
    /// `Violation::StateLimit`).
    VerificationBounded {
        /// The bound that was hit.
        bound: usize,
        /// Composed states explored before stopping.
        states_explored: usize,
    },
    /// The whole run was served from the result cache.
    CacheHit {
        /// The content-addressed cache key (hex).
        key: String,
    },
    /// The CSC stage was resumed from a cached checkpoint (the search
    /// was skipped; synthesis re-ran on the checkpointed specification).
    CscStageResumed {
        /// The checkpoint's cache key (hex).
        key: String,
    },
}

impl fmt::Display for FlowEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowEvent::StateSpaceBuilt {
                backend,
                num_states,
            } => {
                write!(f, "state space built ({backend}): {num_states} states")
            }
            FlowEvent::PropertiesChecked {
                implementable,
                csc_conflicts,
            } => write!(
                f,
                "properties checked: implementable={implementable}, csc conflicts={csc_conflicts}"
            ),
            FlowEvent::CscSweep { kind, stats } => write!(
                f,
                "csc sweep ({kind}): grid={} pruned={} evaluated={} skipped-by-bound={} accepted={}",
                stats.grid, stats.pruned, stats.evaluated, stats.skipped_by_bound, stats.accepted
            ),
            FlowEvent::CscCandidates { strategy, count } => {
                write!(f, "csc candidates ({strategy:?}): {count}")
            }
            FlowEvent::CscApplied(t) => write!(f, "csc applied: {t}"),
            FlowEvent::CandidateRejected { index, reason } => {
                write!(f, "candidate {index} rejected: {reason}")
            }
            FlowEvent::EquationsDerived { count } => {
                write!(f, "{count} equation(s) derived")
            }
            FlowEvent::CircuitSynthesized {
                architecture,
                gates,
                primes,
            } => {
                write!(
                    f,
                    "circuit synthesised ({architecture:?}): {gates} gate(s), {primes} prime(s)"
                )
            }
            FlowEvent::LibraryMapped { cells } => write!(f, "mapped onto {cells} cell(s)"),
            FlowEvent::VerificationPassed { states_explored } => {
                write!(f, "verification passed ({states_explored} composed states)")
            }
            FlowEvent::VerificationSkipped => write!(f, "verification skipped"),
            FlowEvent::VerificationBounded {
                bound,
                states_explored,
            } => write!(
                f,
                "verification bounded: state limit {bound} hit after {states_explored} composed states (inconclusive, not a failure — raise --verify-bound)"
            ),
            FlowEvent::CacheHit { key } => write!(f, "cache hit: {key}"),
            FlowEvent::CscStageResumed { key } => {
                write!(f, "csc checkpoint resumed: {key}")
            }
        }
    }
}

/// Derives the **deterministic** operation counters of a flow from its
/// event log.
///
/// Every value comes from [`FlowEvent`]s, which the parity suites prove
/// byte-identical across sweep thread counts, verify strategies and
/// incremental mode (and across backends where flow parity holds) — so
/// the result inherits those invariants and is safe to pin in the
/// corpus ledger and gate for drift. Counters that depend on the
/// backend or on memoisation state (BDD nodes, decoded states, memo
/// hits) are deliberately absent; see [`Verified::advisory_metrics`].
///
/// Only counters whose originating event appears are emitted, so a
/// check-stage slice carries `states` but no `sweep_*` keys. Keys:
/// `states` (first space built — the check stage's), `spaces_built`,
/// `csc_conflicts`, `sweep_grid` / `sweep_pruned` / `sweep_evaluated` /
/// `sweep_skipped_by_bound` / `sweep_accepted` (summed over sweeps),
/// `csc_candidates`, `csc_applied`, `candidates_rejected`, `equations`,
/// `gates`, `primes` (summed over tried candidates), `mapped_cells`,
/// `states_explored` (summed over verification runs, bounded ones
/// included), `verify_runs`, `verify_bounded`, `verify_skipped`,
/// `cache_full_hits`, `cache_csc_resumes`.
#[must_use]
pub fn flow_metrics(events: &[FlowEvent]) -> telemetry::Counters {
    let mut m = telemetry::Counters::new();
    for event in events {
        match event {
            FlowEvent::StateSpaceBuilt { num_states, .. } => {
                if m.get("states").is_none() {
                    m.set("states", *num_states as u64);
                }
                m.add("spaces_built", 1);
            }
            FlowEvent::PropertiesChecked { csc_conflicts, .. } => {
                m.set("csc_conflicts", *csc_conflicts as u64);
            }
            FlowEvent::CscSweep { stats, .. } => {
                m.add("sweep_grid", stats.grid as u64);
                m.add("sweep_pruned", stats.pruned as u64);
                m.add("sweep_evaluated", stats.evaluated as u64);
                m.add("sweep_skipped_by_bound", stats.skipped_by_bound as u64);
                m.add("sweep_accepted", stats.accepted as u64);
            }
            FlowEvent::CscCandidates { count, .. } => {
                m.set("csc_candidates", *count as u64);
            }
            FlowEvent::CscApplied(_) => m.add("csc_applied", 1),
            FlowEvent::CandidateRejected { .. } => m.add("candidates_rejected", 1),
            FlowEvent::EquationsDerived { count } => m.set("equations", *count as u64),
            FlowEvent::CircuitSynthesized { gates, primes, .. } => {
                // `gates`/`equations` keep the last (winning) value;
                // `primes` sums the work across every candidate tried.
                m.set("gates", *gates as u64);
                m.add("primes", *primes);
            }
            FlowEvent::LibraryMapped { cells } => m.set("mapped_cells", *cells as u64),
            FlowEvent::VerificationPassed { states_explored } => {
                m.add("states_explored", *states_explored as u64);
                m.add("verify_runs", 1);
            }
            FlowEvent::VerificationSkipped => m.add("verify_skipped", 1),
            FlowEvent::VerificationBounded {
                states_explored, ..
            } => {
                m.add("states_explored", *states_explored as u64);
                m.add("verify_bounded", 1);
            }
            FlowEvent::CacheHit { .. } => m.add("cache_full_hits", 1),
            FlowEvent::CscStageResumed { .. } => m.add("cache_csc_resumes", 1),
        }
    }
    m
}

/// The circuit produced by the pipeline, by architecture.
#[derive(Debug, Clone)]
pub enum Circuit {
    /// Complex-gate implementation.
    Complex(ComplexGateCircuit),
    /// Latch-based implementation.
    Latch(LatchCircuit),
    /// Decomposed implementation.
    Decomposed(DecomposedCircuit),
}

impl Circuit {
    /// The netlist of whichever architecture was produced.
    #[must_use]
    pub fn netlist(&self) -> &synth::Netlist {
        match self {
            Circuit::Complex(c) => c.netlist(),
            Circuit::Latch(c) => c.netlist(),
            Circuit::Decomposed(c) => c.netlist(),
        }
    }

    /// Net of each STG signal, in signal order.
    #[must_use]
    pub fn signal_nets(&self, spec: &Stg) -> Vec<NetId> {
        match self {
            Circuit::Complex(c) => spec.signals().map(|s| c.signal_net(s)).collect(),
            Circuit::Latch(c) => spec.signals().map(|s| c.signal_net(s)).collect(),
            Circuit::Decomposed(c) => spec.signals().map(|s| c.signal_net(s)).collect(),
        }
    }
}

/// The staged pipeline entry point: a builder over a specification.
#[derive(Debug)]
pub struct Synthesis {
    spec: Stg,
    options: SynthesisOptions,
}

impl Synthesis {
    /// Starts a pipeline session on `spec` with default options.
    #[must_use]
    pub fn new(spec: Stg) -> Self {
        Synthesis {
            spec,
            options: SynthesisOptions::default(),
        }
    }

    /// Starts a session with explicit options (the [`run_batch`] path).
    #[must_use]
    pub fn with_options(spec: Stg, options: SynthesisOptions) -> Self {
        Synthesis { spec, options }
    }

    /// Selects the state-space backend.
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> Self {
        self.options.backend = backend;
        self
    }

    /// Selects the target architecture.
    #[must_use]
    pub fn architecture(mut self, architecture: Architecture) -> Self {
        self.options.architecture = architecture;
        self
    }

    /// Selects the CSC resolution strategy.
    #[must_use]
    pub fn csc(mut self, csc: CscStrategy) -> Self {
        self.options.csc = csc;
        self
    }

    /// Bounds gate fan-in for [`Architecture::Decomposed`].
    #[must_use]
    pub fn max_fanin(mut self, max_fanin: usize) -> Self {
        self.options.max_fanin = Some(max_fanin);
        self
    }

    /// Skips the final exhaustive verification.
    #[must_use]
    pub fn skip_verification(mut self, skip: bool) -> Self {
        self.options.skip_verification = skip;
        self
    }

    /// Configures the verification engine (bound, strategy,
    /// incremental mode).
    #[must_use]
    pub fn verify_options(mut self, verify: VerifyOptions) -> Self {
        self.options.verify = verify;
        self
    }

    /// Stage 1 (§2.1): builds the state space and checks boundedness,
    /// consistency, persistency and deadlock-freedom.
    ///
    /// # Errors
    ///
    /// [`PipelineError::NotImplementable`] when a property no automatic
    /// transformation fixes fails. CSC violations do *not* fail this
    /// stage — they are [`Checked::resolve_csc`]'s job.
    pub fn check(self) -> Result<Checked, PipelineError> {
        let mut events = Vec::new();
        let space = match self.options.backend.build(&self.spec) {
            Ok(space) => space,
            Err(e) => {
                return Err(PipelineError::NotImplementable(Box::new(
                    stg::properties::failure_report(e),
                )));
            }
        };
        events.push(FlowEvent::StateSpaceBuilt {
            backend: self.options.backend,
            num_states: space.num_states(),
        });
        let report = stg::properties::report_from_sg(&self.spec, &*space);
        events.push(FlowEvent::PropertiesChecked {
            implementable: report.is_implementable(),
            csc_conflicts: report.csc_conflict_pairs,
        });
        if !report.bounded || !report.consistent || !report.persistent || !report.deadlock_free {
            return Err(PipelineError::NotImplementable(Box::new(report)));
        }
        Ok(Checked {
            spec: self.spec,
            options: self.options,
            space,
            report,
            events,
        })
    }

    /// Runs all four stages: `check → resolve_csc → synthesize → verify`.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`]. Notably, specifications whose only defect is
    /// CSC are repaired automatically under the default options.
    pub fn run(self) -> Result<Verified, PipelineError> {
        self.check()?.resolve_csc()?.synthesize()?.verify()
    }
}

/// How many ranked CSC candidates the synthesis stage will try (its
/// backtracking depth) — and therefore how many validated candidate
/// state spaces the sweeps keep alive so no tried candidate is rebuilt.
const CSC_CANDIDATE_LIMIT: usize = 12;

/// Stage 1 artifact: the specification passed every non-CSC §2.1 check.
#[derive(Debug)]
pub struct Checked {
    spec: Stg,
    options: SynthesisOptions,
    space: Box<dyn StateSpace>,
    report: ImplementabilityReport,
    events: Vec<FlowEvent>,
}

impl Checked {
    /// The specification.
    #[must_use]
    pub fn spec(&self) -> &Stg {
        &self.spec
    }

    /// The full implementability report.
    #[must_use]
    pub fn report(&self) -> &ImplementabilityReport {
        &self.report
    }

    /// The state space built by the configured backend.
    #[must_use]
    pub fn state_space(&self) -> &dyn StateSpace {
        &*self.space
    }

    /// Diagnostics accumulated so far.
    #[must_use]
    pub fn events(&self) -> &[FlowEvent] {
        &self.events
    }

    /// Stage 2 (§3.1): gathers candidate CSC-clean specifications.
    ///
    /// When CSC already holds the original specification (and its state
    /// space) is the single candidate; otherwise candidates come from
    /// state-signal insertion, concurrency reduction and the mixed greedy
    /// search, per the configured [`CscStrategy`], best first.
    ///
    /// # Errors
    ///
    /// [`PipelineError::CscUnresolved`] when no candidate exists under the
    /// requested strategy.
    pub fn resolve_csc(self) -> Result<CscResolved, PipelineError> {
        let Checked {
            spec,
            options,
            space,
            report,
            mut events,
        } = self;
        let backend = options.backend;
        // The sweeps retain validated spaces for as many candidates as
        // this stage hands to the backtracking synthesiser, so no tried
        // candidate is ever rebuilt downstream.
        let sweep_options = options.sweep.clone().with_keep_spaces(CSC_CANDIDATE_LIMIT);
        let candidates: Vec<CscCandidate> = if report.complete_state_coding {
            vec![CscCandidate {
                spec: spec.clone(),
                transformation: None,
                space: Some(space),
                report: Some(report),
            }]
        } else {
            let mut list: Vec<CscCandidate> = Vec::new();
            let run_insertions = |list: &mut Vec<CscCandidate>, events: &mut Vec<FlowEvent>| {
                // The check stage's space seeds the sweep's pruner —
                // the base is never rebuilt.
                let sweep =
                    synth::csc::insertion_sweep_from(&spec, backend, &sweep_options, Some(&*space));
                events.push(FlowEvent::CscSweep {
                    kind: CscKind::SignalInsertion,
                    stats: sweep.stats,
                });
                for r in sweep.candidates.into_iter().take(CSC_CANDIDATE_LIMIT) {
                    list.push(CscCandidate::from_resolution(r, CscKind::SignalInsertion));
                }
            };
            let run_reduction = |list: &mut Vec<CscCandidate>, events: &mut Vec<FlowEvent>| {
                let (r, stats) = synth::csc::concurrency_reduction_sweep(
                    &spec,
                    backend,
                    &sweep_options,
                    Some(&*space),
                );
                events.push(FlowEvent::CscSweep {
                    kind: CscKind::ConcurrencyReduction,
                    stats,
                });
                if let Some(r) = r {
                    list.push(CscCandidate::from_resolution(
                        r,
                        CscKind::ConcurrencyReduction,
                    ));
                }
            };
            match options.csc {
                CscStrategy::Fail => {}
                CscStrategy::SignalInsertion => run_insertions(&mut list, &mut events),
                CscStrategy::ConcurrencyReduction => run_reduction(&mut list, &mut events),
                CscStrategy::Auto => {
                    run_insertions(&mut list, &mut events);
                    run_reduction(&mut list, &mut events);
                    // Mixed fall-back for controllers needing several
                    // transformations (e.g. the READ+WRITE spec of Fig. 5
                    // takes a reduction plus a state signal). The check
                    // stage's space is moved in as its first-step base.
                    let (r, stats) = synth::csc::resolve_mixed_sweep(
                        &spec,
                        5,
                        backend,
                        &sweep_options,
                        Some(space),
                    );
                    events.push(FlowEvent::CscSweep {
                        kind: CscKind::Mixed,
                        stats,
                    });
                    if let Some(r) = r {
                        list.push(CscCandidate::from_resolution(r, CscKind::Mixed));
                    }
                }
            }
            events.push(FlowEvent::CscCandidates {
                strategy: options.csc,
                count: list.len(),
            });
            if list.is_empty() {
                return Err(PipelineError::CscUnresolved { events });
            }
            list
        };
        Ok(CscResolved {
            options,
            candidates,
            events,
        })
    }
}

/// A candidate CSC-clean specification, with the transformation that
/// produced it (`None` for the untransformed original).
#[derive(Debug)]
pub struct CscCandidate {
    /// The (possibly transformed) specification.
    pub spec: Stg,
    /// The applied transformation, if any.
    pub transformation: Option<CscTransformation>,
    /// The candidate's state space, when already built (the identity
    /// candidate reuses the check stage's space).
    space: Option<Box<dyn StateSpace>>,
    /// The candidate's implementability report, when already computed.
    report: Option<ImplementabilityReport>,
}

impl CscCandidate {
    fn from_resolution(r: CscResolutionWithSpace, kind: CscKind) -> Self {
        CscCandidate {
            spec: r.stg,
            transformation: Some(CscTransformation {
                kind,
                description: r.description,
                num_states: r.num_states,
            }),
            space: r.space,
            report: None,
        }
    }
}

/// Stage 2 artifact: ranked CSC-clean candidates.
#[derive(Debug)]
pub struct CscResolved {
    options: SynthesisOptions,
    candidates: Vec<CscCandidate>,
    events: Vec<FlowEvent>,
}

impl CscResolved {
    /// The candidate transformations, best first.
    #[must_use]
    pub fn candidates(&self) -> &[CscCandidate] {
        &self.candidates
    }

    /// Diagnostics accumulated so far.
    #[must_use]
    pub fn events(&self) -> &[FlowEvent] {
        &self.events
    }

    /// Stage 3 (§3.2–§3.4): synthesises the first candidate that yields a
    /// working circuit in the target architecture.
    ///
    /// Several resolutions can be acceptable at the specification level
    /// (e.g. a state signal and its complement); candidates are tried
    /// best-first and the first one whose synthesised circuit verifies
    /// (unless verification is skipped) wins. Rejections are recorded as
    /// [`FlowEvent::CandidateRejected`].
    ///
    /// # Errors
    ///
    /// The last candidate's error when all of them fail.
    pub fn synthesize(mut self) -> Result<Synthesized, PipelineError> {
        let mut last_error = PipelineError::CscUnresolved { events: Vec::new() };
        let candidates = std::mem::take(&mut self.candidates);
        // One memoising verifier across the whole candidate loop: under
        // `VerifyOptions::incremental`, re-verifying a circuit variant
        // re-explores only the cones of the gates that changed, and the
        // final probe of an already-verified variant is a pure cache
        // hit.
        let mut verifier = if self.options.verify.incremental {
            Some(IncrementalVerifier::new())
        } else {
            None
        };
        for (index, candidate) in candidates.into_iter().enumerate() {
            match synthesize_candidate(candidate, &self.options, verifier.as_mut()) {
                Ok((mut synthesized, mut events)) => {
                    if let Some(t) = &synthesized.transformation {
                        self.events.push(FlowEvent::CscApplied(t.clone()));
                    }
                    self.events.append(&mut events);
                    synthesized.events = self.events;
                    // Memoisation counters are advisory telemetry: they
                    // depend on the verify strategy and incremental
                    // flag, which the parity suite proves output-neutral
                    // — so they ride outside the events/summary and
                    // never reach the cache or the drift-gated set.
                    if let Some(v) = &verifier {
                        let s = v.stats();
                        let adv = &mut synthesized.advisory;
                        adv.set("incremental_full_hits", s.full_hits as u64);
                        adv.set("incremental_full_misses", s.full_misses as u64);
                        adv.set("incremental_settle_hits", s.settle_hits as u64);
                        adv.set("incremental_settle_misses", s.settle_misses as u64);
                        adv.set("incremental_tracker_reuses", s.tracker_reuses as u64);
                    }
                    return Ok(synthesized);
                }
                Err((e, mut events)) => {
                    // Keep the rejected candidate's diagnostics (notably
                    // bounded-verification events) in the log.
                    self.events.append(&mut events);
                    self.events.push(FlowEvent::CandidateRejected {
                        index,
                        reason: e.to_string(),
                    });
                    last_error = e;
                }
            }
        }
        // Surface the whole rejection log with the failure — even for a
        // single candidate it carries the per-candidate diagnostics
        // (notably bounded-verification events, which must never be
        // conflated with a real failure).
        Err(PipelineError::CandidatesExhausted {
            last: Box::new(last_error),
            events: self.events,
        })
    }
}

/// Runs one verification through the configured engine: the shared
/// memoising [`IncrementalVerifier`] when the flow enables incremental
/// mode, the monolithic engine otherwise. A bound hit is surfaced as
/// [`FlowEvent::VerificationBounded`] so it is never conflated with a
/// real failure.
fn run_verify(
    spec: &Stg,
    space: &dyn StateSpace,
    netlist: &synth::Netlist,
    nets: &[NetId],
    options: &SynthesisOptions,
    verifier: Option<&mut IncrementalVerifier>,
    events: &mut Vec<FlowEvent>,
) -> VerificationReport {
    let report = match verifier {
        Some(v) if options.verify.incremental => {
            v.verify(spec, space, netlist, nets, &options.verify)
        }
        _ => verify::verify_with(spec, space, netlist, nets, &options.verify),
    };
    if report.hit_state_limit() {
        events.push(FlowEvent::VerificationBounded {
            bound: options.verify.bound,
            states_explored: report.states_explored,
        });
    }
    report
}

/// Synthesises and (unless skipped) verification-probes one candidate.
/// Errors carry the events accumulated up to the failure, so rejected
/// candidates keep their diagnostics in the flow log.
fn synthesize_candidate(
    candidate: CscCandidate,
    options: &SynthesisOptions,
    mut verifier: Option<&mut IncrementalVerifier>,
) -> Result<(Synthesized, Vec<FlowEvent>), (PipelineError, Vec<FlowEvent>)> {
    let mut events = Vec::new();
    let CscCandidate {
        spec,
        transformation,
        space,
        report,
    } = candidate;
    let fail = |e: PipelineError, events: Vec<FlowEvent>| Err((e, events));
    // Everything below runs on this thread, so the delta of boolmin's
    // thread-local prime counter taken around the logic-synthesis block
    // is exact (and thread-count-invariant: sweep workers have already
    // finished, and their counters live on their own threads).
    let primes_before = boolmin::primes_generated();
    let space: Box<dyn StateSpace> = match space {
        Some(space) => space,
        None => match options.backend.build(&spec) {
            Ok(space) => {
                events.push(FlowEvent::StateSpaceBuilt {
                    backend: options.backend,
                    num_states: space.num_states(),
                });
                space
            }
            Err(e) => return fail(PipelineError::Synthesis(e.to_string()), events),
        },
    };
    let report = match report {
        Some(report) => report,
        None => stg::properties::report_from_sg(&spec, &*space),
    };

    // The non-complex architectures walk the per-state API
    // (`ts()`/`code()`), which the resident-BDD backend only serves
    // through its small-space materialised view — refuse with a clean
    // error instead of letting the view's size assertion abort the
    // process mid-flow. Verification itself no longer needs the view:
    // the composed strategy runs set-level against any backend (only
    // the legacy explicit-BFS strategy still walks `ts()`).
    let needs_per_state = !matches!(options.architecture, Architecture::ComplexGate)
        || (!options.skip_verification && options.verify.strategy == VerifyStrategy::ExplicitBfs);
    if needs_per_state && space.set_level_native() && space.num_states() > stg::MATERIALISE_LIMIT {
        return fail(
            PipelineError::Synthesis(format!(
                "state space has {} states — too large for the resident-BDD backend's \
                 per-state architecture paths (limit {}); re-run under the complex-gate \
                 architecture with the composed verify strategy, or an enumerating backend",
                space.num_states(),
                stg::MATERIALISE_LIMIT
            )),
            events,
        );
    }

    // Next-state functions and equations (§3.2).
    let complex = match synthesize_complex_gates(&spec, &*space) {
        Ok(c) => c,
        Err(e) => return fail(PipelineError::Synthesis(e.to_string()), events),
    };
    let equations_text = complex.display_equations(&spec);
    events.push(FlowEvent::EquationsDerived {
        count: complex.equations().len(),
    });

    // Architecture mapping (§3.4).
    let max_fanin = options.max_fanin.unwrap_or(2);
    let circuit = match options.architecture {
        Architecture::ComplexGate => Circuit::Complex(complex.clone()),
        Architecture::CElement => {
            match synthesize_latch_circuit(&spec, &*space, LatchStyle::CElement) {
                Ok(c) => Circuit::Latch(c),
                Err(e) => return fail(PipelineError::Synthesis(e.to_string()), events),
            }
        }
        Architecture::RsLatch => {
            match synthesize_latch_circuit(&spec, &*space, LatchStyle::RsLatch) {
                Ok(c) => Circuit::Latch(c),
                Err(e) => return fail(PipelineError::Synthesis(e.to_string()), events),
            }
        }
        Architecture::Decomposed => {
            // Fig. 9: try the naive decomposition; if it is hazardous,
            // repair by resubstitution (multiple acknowledgment). Under
            // incremental verification the repair's re-verification
            // reuses every cone the resubstitution left unchanged.
            let naive = decompose(&spec, &complex, max_fanin);
            let nets: Vec<NetId> = spec.signals().map(|s| naive.signal_net(s)).collect();
            let naive_report = run_verify(
                &spec,
                &*space,
                naive.netlist(),
                &nets,
                options,
                verifier.as_deref_mut(),
                &mut events,
            );
            if naive_report.is_speed_independent() {
                Circuit::Decomposed(naive)
            } else {
                Circuit::Decomposed(resubstitute(&spec, &*space, &naive))
            }
        }
    };
    events.push(FlowEvent::CircuitSynthesized {
        architecture: options.architecture,
        gates: circuit.netlist().num_gates(),
        primes: boolmin::primes_generated() - primes_before,
    });

    // Technology-library sanity (standard library; the two-input library
    // only fits decomposed netlists).
    let library = match options.architecture {
        Architecture::Decomposed => Library::two_input(),
        _ => Library::standard(),
    };
    let mapping = map_to_library(circuit.netlist(), &library).ok();
    if let Some(m) = &mapping {
        events.push(FlowEvent::LibraryMapped {
            cells: m.num_cells(),
        });
    }

    // Verification probe (§2.1 "implementation verification"). Latch
    // architectures are certified via their atomic equivalent plus the
    // monotonous-cover condition (§3.4); gate-level netlists go through
    // the strict Muller-model checker directly.
    let probe = if options.skip_verification {
        None
    } else {
        let v = match &circuit {
            Circuit::Latch(latch) => {
                let violations =
                    synth::latch_arch::monotonic_violations(&spec, &*space, &latch.covers);
                if !violations.is_empty() {
                    return fail(
                        PipelineError::Synthesis(format!(
                            "{} monotonous-cover violation(s) in the latch networks",
                            violations.len()
                        )),
                        events,
                    );
                }
                let (atomic, nets) = latch.atomic_netlist(&spec);
                run_verify(
                    &spec,
                    &*space,
                    &atomic,
                    &nets,
                    options,
                    verifier,
                    &mut events,
                )
            }
            _ => {
                let nets = circuit.signal_nets(&spec);
                run_verify(
                    &spec,
                    &*space,
                    circuit.netlist(),
                    &nets,
                    options,
                    verifier,
                    &mut events,
                )
            }
        };
        if !v.is_speed_independent() {
            return fail(PipelineError::VerificationFailed(Box::new(v)), events);
        }
        Some(v)
    };

    Ok((
        Synthesized {
            spec,
            options: options.clone(),
            space,
            transformation,
            report,
            circuit,
            equations_text,
            mapping,
            probe,
            events: Vec::new(),
            advisory: telemetry::Counters::new(),
        },
        events,
    ))
}

/// Stage 3 artifact: a synthesised circuit with its equations, mapping
/// and (unless skipped) a passed verification probe.
#[derive(Debug)]
pub struct Synthesized {
    spec: Stg,
    options: SynthesisOptions,
    space: Box<dyn StateSpace>,
    transformation: Option<CscTransformation>,
    report: ImplementabilityReport,
    circuit: Circuit,
    equations_text: String,
    mapping: Option<Mapping>,
    probe: Option<VerificationReport>,
    events: Vec<FlowEvent>,
    advisory: telemetry::Counters,
}

impl Synthesized {
    /// The (possibly CSC-transformed) specification actually synthesised.
    #[must_use]
    pub fn spec(&self) -> &Stg {
        &self.spec
    }

    /// The applied CSC transformation, if any.
    #[must_use]
    pub fn transformation(&self) -> Option<&CscTransformation> {
        self.transformation.as_ref()
    }

    /// The implementability report of the final specification.
    #[must_use]
    pub fn report(&self) -> &ImplementabilityReport {
        &self.report
    }

    /// The synthesised circuit.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Pretty-printed logic equations.
    #[must_use]
    pub fn equations_text(&self) -> &str {
        &self.equations_text
    }

    /// The library mapping, when the netlist fits the library.
    #[must_use]
    pub fn mapping(&self) -> Option<&Mapping> {
        self.mapping.as_ref()
    }

    /// The final specification's state space.
    #[must_use]
    pub fn state_space(&self) -> &dyn StateSpace {
        &*self.space
    }

    /// Diagnostics accumulated so far.
    #[must_use]
    pub fn events(&self) -> &[FlowEvent] {
        &self.events
    }

    /// The verification outcome at this stage: [`Verification::Passed`]
    /// when the candidate-selection probe ran, [`Verification::NotRun`]
    /// when verification was skipped and has not happened yet.
    #[must_use]
    pub fn verification(&self) -> Verification {
        match &self.probe {
            Some(v) => Verification::Passed(v.clone()),
            None => Verification::NotRun,
        }
    }

    /// Stage 4: finalises the verification outcome.
    ///
    /// When verification was enabled the probe already ran during
    /// candidate selection (a candidate whose circuit fails verification
    /// never reaches this stage) and its report is reused — nothing is
    /// recomputed. With [`SynthesisOptions::skip_verification`] the
    /// outcome is [`Verification::Skipped`].
    ///
    /// # Errors
    ///
    /// Never fails today; the `Result` keeps the stage API uniform and
    /// leaves room for re-verification policies.
    pub fn verify(self) -> Result<Verified, PipelineError> {
        let Synthesized {
            spec,
            options,
            space,
            transformation,
            report,
            circuit,
            equations_text,
            mapping,
            probe,
            mut events,
            mut advisory,
        } = self;
        // Probe the final space's backend-specific counters: real work
        // done by this process, but backend-dependent — advisory only.
        if let Some(n) = space.bdd_node_count() {
            advisory.set("bdd_nodes", n as u64);
        }
        if let Some(d) = space.decoded_state_count() {
            advisory.set("decoded_states", d);
        }
        let verification = if options.skip_verification {
            events.push(FlowEvent::VerificationSkipped);
            Verification::Skipped
        } else {
            // The probe runs during candidate selection whenever
            // verification is enabled, so it is always present here (and
            // already latch-aware: latch circuits were certified via
            // their atomic equivalent plus the monotonous-cover check).
            let v = probe.expect("verification probe runs when not skipped");
            events.push(FlowEvent::VerificationPassed {
                states_explored: v.states_explored,
            });
            Verification::Passed(v)
        };
        Ok(Verified {
            spec,
            transformation,
            report,
            circuit,
            equations_text,
            mapping,
            verification,
            space,
            events,
            advisory,
        })
    }
}

/// Stage 4 artifact: everything the pipeline produced.
#[derive(Debug)]
pub struct Verified {
    /// The (possibly CSC-transformed) specification actually synthesised.
    pub spec: Stg,
    /// The applied CSC transformation, if any.
    pub transformation: Option<CscTransformation>,
    /// The implementability report of the final specification.
    pub report: ImplementabilityReport,
    /// The synthesised circuit.
    pub circuit: Circuit,
    /// Pretty-printed logic equations (complex-gate view of the spec).
    pub equations_text: String,
    /// Library mapping of the final netlist.
    pub mapping: Option<Mapping>,
    /// The verification outcome (three-valued).
    pub verification: Verification,
    space: Box<dyn StateSpace>,
    events: Vec<FlowEvent>,
    advisory: telemetry::Counters,
}

impl Verified {
    /// The final specification's state space.
    #[must_use]
    pub fn state_space(&self) -> &dyn StateSpace {
        &*self.space
    }

    /// Number of states of the final specification.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.space.num_states()
    }

    /// The full diagnostic log, in stage order.
    #[must_use]
    pub fn events(&self) -> &[FlowEvent] {
        &self.events
    }

    /// Advisory operation counters for this run: BDD nodes, lazily
    /// decoded states, incremental-verifier memo hits. Unlike
    /// [`flow_metrics`] these vary by backend, verify strategy and
    /// incremental mode, so they never enter the summary, the cache or
    /// any drift-gated artifact.
    #[must_use]
    pub fn advisory_metrics(&self) -> &telemetry::Counters {
        &self.advisory
    }
}

/// Synthesises many controllers concurrently on scoped threads (one
/// worker per available core, work-stealing over the input list via
/// [`synth::par`], the same engine the CSC candidate sweep runs on).
///
/// Results are returned in input order; per-spec failures do not abort
/// the batch.
#[must_use]
pub fn run_batch(
    specs: &[Stg],
    options: &SynthesisOptions,
) -> Vec<Result<Verified, PipelineError>> {
    // The batch workers already occupy every core; nested per-core CSC
    // sweep workers would oversubscribe the machine quadratically (and
    // multiply each sweep's retained candidate spaces), so each spec's
    // sweep runs serially inside its batch worker. Thread count is
    // output-neutral, so results are identical either way.
    let mut options = options.clone();
    options.sweep.threads = 1;
    synth::par::par_map(specs, 0, |_, spec| {
        Synthesis::with_options(spec.clone(), options.clone()).run()
    })
}

// ---------------------------------------------------------------------
// The cached, observable flow (the synthesis service's entry point)
// ---------------------------------------------------------------------

use stg::canon::Digest;

use crate::cache::ResultCache;
use crate::json::Json;
use crate::summary::SynthesisSummary;

/// Schema tag folded into every cache key; bump whenever the meaning of
/// a cached payload changes so stale entries can never be served.
/// (v4: summaries carry the deterministic [`flow_metrics`] counters and
/// circuit events carry the minimiser's prime count. v3: verification
/// runs through the composed engine — summaries carry its event log,
/// rejected candidates keep their events, and the verify
/// bound/incremental options joined the key. v2: next-state derivation
/// feeds the minimiser deduplicated, lexicographically sorted code
/// cubes — cover-size ties can resolve differently than v1's
/// first-occurrence order.)
pub const CACHE_SCHEMA: &str = "asyncsynth-flow-v4";

/// Which stage's artifact a cache key addresses. Each stage salts its
/// key with exactly the options that influence its result, so e.g. a
/// `Check` entry is shared across architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStage {
    /// The §2.1 implementability report.
    Check,
    /// The CSC-resolution checkpoint (the winning transformed
    /// specification, before synthesis).
    Csc,
    /// The complete flow result ([`SynthesisSummary`]).
    Full,
}

impl CacheStage {
    fn tag(self) -> &'static str {
        match self {
            CacheStage::Check => "check",
            CacheStage::Csc => "csc",
            CacheStage::Full => "full",
        }
    }
}

/// The content-addressed cache key of one stage of the flow on
/// `(spec, options)`: a SHA-256 over the canonical specification, the
/// schema version, the stage tag and the options that stage depends on.
#[must_use]
pub fn cache_key(spec: &Stg, options: &SynthesisOptions, stage: CacheStage) -> Digest {
    let fanin = options
        .max_fanin
        .map_or_else(|| "default".to_owned(), |n| n.to_string());
    // The sweep's state bound can change the result (candidates above
    // it are skipped) and pruning changes the diagnostic counters
    // embedded in the cached summary's event log, so both salt the key.
    // The thread count is fully neutral — circuit *and* diagnostics are
    // byte-identical at any count (the parity tests assert it) — so it
    // stays out, and a cache warmed at one thread count serves every
    // other.
    let sweep_bound = options.sweep.bound.to_string();
    let mut extras: Vec<&str> = vec![CACHE_SCHEMA, stage.tag(), options.backend.name()];
    if matches!(stage, CacheStage::Csc | CacheStage::Full) {
        extras.push(options.csc.name());
        extras.push(&sweep_bound);
        extras.push(if options.sweep.prune {
            "prune"
        } else {
            "noprune"
        });
    }
    // The verify bound salts the Full key: a bounded run can fail where
    // a bigger budget would pass. The spec-tracking strategy and the
    // incremental flag are output-neutral — `verify_parity.rs` asserts
    // byte-identical flows across both — so, like the sweep's thread
    // count, they stay out and a cache warmed under one configuration
    // serves the others.
    let verify_bound = options.verify.bound.to_string();
    if matches!(stage, CacheStage::Full) {
        extras.push(options.architecture.name());
        extras.push(&fanin);
        extras.push(if options.skip_verification {
            "noverify"
        } else {
            "verify"
        });
        // The bound only matters when verification actually runs — a
        // no-verify cache entry serves every bound.
        if !options.skip_verification {
            extras.push(&verify_bound);
        }
    }
    stg::canon::keyed_digest(spec, &extras)
}

/// Observes a cached flow run: one callback per completed stage (with
/// the events that stage appended) plus a cancellation poll between
/// stages. The synthesis service uses this to stream [`FlowEvent`]s to
/// clients and to abort cancelled jobs without killing the worker.
pub trait FlowObserver {
    /// Called after each stage with the stage's name and new events.
    fn stage(&mut self, stage: &str, events: &[FlowEvent]);

    /// Polled between stages; returning `true` aborts the run with
    /// [`PipelineError::Cancelled`].
    fn cancelled(&self) -> bool {
        false
    }
}

/// The no-op observer ([`run_cached`]'s default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl FlowObserver for NullObserver {
    fn stage(&mut self, _stage: &str, _events: &[FlowEvent]) {}
}

/// How the cache participated in a [`run_cached`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The complete result was served from the cache; no synthesis
    /// stage ran.
    Hit,
    /// The CSC search was skipped thanks to a stage checkpoint; the
    /// remaining stages ran.
    CscResumed,
    /// Everything ran; the result was stored for next time.
    Miss,
    /// No cache was configured.
    Disabled,
}

impl CacheOutcome {
    /// Canonical protocol name (`hit`, `csc_resumed`, `miss`, `disabled`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::CscResumed => "csc_resumed",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Disabled => "disabled",
        }
    }
}

/// Result of [`run_cached`]: the serialisable summary plus how the
/// cache participated.
#[derive(Debug, Clone)]
pub struct CachedRun {
    /// The flow's outcome.
    pub summary: SynthesisSummary,
    /// Hit / resumed / miss / disabled.
    pub outcome: CacheOutcome,
    /// The full-result cache key, when a cache was configured.
    pub key: Option<Digest>,
    /// Advisory counters for the work *this process* did (see
    /// [`Verified::advisory_metrics`]); empty on a full cache hit —
    /// a served result explored nothing.
    pub advisory: telemetry::Counters,
}

/// Runs the full flow through the content-addressed result cache.
///
/// Equivalent to [`run_cached_with`] with a no-op observer.
///
/// # Errors
///
/// See [`run_cached_with`].
pub fn run_cached(
    spec: &Stg,
    options: &SynthesisOptions,
    cache: &ResultCache,
) -> Result<CachedRun, PipelineError> {
    run_cached_with(spec, options, Some(cache), &mut NullObserver)
}

/// The resumable cached flow: consults the cache per stage, runs only
/// what is missing, and reports stage completions to `observer`.
///
/// * On a **full hit** the stored [`SynthesisSummary`] is returned as-is
///   and no synthesis stage runs (the observer sees a single `cache`
///   stage carrying [`FlowEvent::CacheHit`]).
/// * On a **CSC checkpoint hit** the O(T²) CSC candidate search is
///   skipped: synthesis restarts from the checkpointed winning
///   specification.
/// * On a **miss** everything runs, then both the checkpoint and the
///   full result are stored (atomically — concurrent workers race
///   benignly; last write wins with identical content).
///
/// # Errors
///
/// Any [`PipelineError`] of the underlying stages, plus
/// [`PipelineError::Cancelled`] when the observer requests cancellation
/// between stages. Cache I/O failures are deliberately swallowed (a
/// broken cache degrades to recomputation, never to a wrong answer).
pub fn run_cached_with(
    spec: &Stg,
    options: &SynthesisOptions,
    cache: Option<&ResultCache>,
    observer: &mut dyn FlowObserver,
) -> Result<CachedRun, PipelineError> {
    if observer.cancelled() {
        return Err(PipelineError::Cancelled);
    }
    let full_key = cache.map(|_| cache_key(spec, options, CacheStage::Full));
    if let (Some(cache), Some(key)) = (cache, full_key) {
        if let Some(payload) = cache.load(&key) {
            if let Ok(summary) = SynthesisSummary::from_json(&payload) {
                let event = FlowEvent::CacheHit { key: key.to_hex() };
                observer.stage("cache", std::slice::from_ref(&event));
                return Ok(CachedRun {
                    summary,
                    outcome: CacheOutcome::Hit,
                    key: Some(key),
                    advisory: telemetry::Counters::new(),
                });
            }
        }
    }

    // CSC stage checkpoint, if one is cached.
    let csc_key = cache.map(|_| cache_key(spec, options, CacheStage::Csc));
    let checkpoint = match (cache, csc_key) {
        (Some(cache), Some(key)) => cache
            .load(&key)
            .and_then(|p| decode_csc_checkpoint(&p))
            .map(|cp| (key, cp)),
        _ => None,
    };
    let (verified, resumed) = match checkpoint {
        Some(cp) => match run_stages(spec, options, cache, observer, Some(cp)) {
            Ok(v) => (v, true),
            Err(PipelineError::Cancelled) => return Err(PipelineError::Cancelled),
            // The checkpoint key is shared across architectures (the
            // CSC search does not depend on them), but resuming pins
            // the flow to the single checkpointed candidate — which a
            // different architecture, fan-in bound or verification
            // policy may reject even though the full search would
            // backtrack to another candidate. A failed resume therefore
            // falls back to the complete flow instead of failing a run
            // that would succeed cold.
            Err(_) => (run_stages(spec, options, cache, observer, None)?, false),
        },
        None => (run_stages(spec, options, cache, observer, None)?, false),
    };

    if let (Some(cache), Some(key)) = (cache, csc_key) {
        if !resumed {
            let _ = cache.store(&key, &encode_csc_checkpoint(&verified));
        }
    }
    let summary = SynthesisSummary::from_verified(&verified, options);
    if let (Some(cache), Some(key)) = (cache, full_key) {
        let _ = cache.store(&key, &summary.to_json());
    }
    Ok(CachedRun {
        summary,
        advisory: verified.advisory_metrics().clone(),
        outcome: if cache.is_none() {
            CacheOutcome::Disabled
        } else if resumed {
            CacheOutcome::CscResumed
        } else {
            CacheOutcome::Miss
        },
        key: full_key,
    })
}

/// One complete pass through the four stages, reporting each stage to
/// the observer; with a checkpoint, the CSC search is replaced by the
/// checkpointed winning candidate.
fn run_stages(
    spec: &Stg,
    options: &SynthesisOptions,
    cache: Option<&ResultCache>,
    observer: &mut dyn FlowObserver,
    checkpoint: Option<(Digest, (Stg, Option<CscTransformation>))>,
) -> Result<Verified, PipelineError> {
    let mut seen = 0usize;
    let emit =
        |observer: &mut dyn FlowObserver, stage: &str, events: &[FlowEvent], seen: &mut usize| {
            observer.stage(stage, &events[*seen..]);
            *seen = events.len();
        };

    let checked = Synthesis::with_options(spec.clone(), options.clone()).check()?;
    emit(observer, "check", checked.events(), &mut seen);
    if let Some(cache) = cache {
        // The check stage's artifact is cacheable on its own (shared by
        // every architecture); used by the service's `check` operation.
        let key = cache_key(spec, options, CacheStage::Check);
        let _ = cache.store(&key, &crate::summary::report_to_json(checked.report()));
    }
    if observer.cancelled() {
        return Err(PipelineError::Cancelled);
    }

    let resolved = match checkpoint {
        Some((key, (csc_spec, transformation))) => {
            let Checked {
                options,
                mut events,
                ..
            } = checked;
            events.push(FlowEvent::CscStageResumed { key: key.to_hex() });
            CscResolved {
                options,
                candidates: vec![CscCandidate {
                    spec: csc_spec,
                    transformation,
                    space: None,
                    report: None,
                }],
                events,
            }
        }
        None => checked.resolve_csc()?,
    };
    emit(observer, "csc", resolved.events(), &mut seen);
    if observer.cancelled() {
        return Err(PipelineError::Cancelled);
    }

    let synthesized = resolved.synthesize()?;
    emit(observer, "synthesize", synthesized.events(), &mut seen);
    if observer.cancelled() {
        return Err(PipelineError::Cancelled);
    }

    let verified = synthesized.verify()?;
    emit(observer, "verify", verified.events(), &mut seen);
    Ok(verified)
}

/// Encodes the CSC stage checkpoint: the winning (possibly transformed)
/// specification and the transformation that produced it.
fn encode_csc_checkpoint(verified: &Verified) -> Json {
    Json::obj(vec![
        ("spec", Json::str(stg::parse::write_g(&verified.spec))),
        (
            "transformation",
            verified.transformation.as_ref().map_or(Json::Null, |t| {
                Json::obj(vec![
                    ("kind", Json::str(t.kind.to_string())),
                    ("description", Json::str(&t.description)),
                    ("states", Json::num(t.num_states)),
                ])
            }),
        ),
    ])
}

/// Decodes a CSC checkpoint; `None` on any mismatch (treated as a miss).
fn decode_csc_checkpoint(payload: &Json) -> Option<(Stg, Option<CscTransformation>)> {
    let spec = stg::parse::parse_g(payload.get("spec")?.as_str()?).ok()?;
    let transformation = match payload.get("transformation")? {
        Json::Null => None,
        t => Some(CscTransformation {
            kind: t.get("kind")?.as_str()?.parse().ok()?,
            description: t.get("description")?.as_str()?.to_owned(),
            num_states: t.get("states")?.as_usize()?,
        }),
    };
    Some((spec, transformation))
}
