//! The staged synthesis pipeline: the §3 flow (property checking → CSC
//! resolution → synthesis → verification) as a typed state machine over
//! pluggable state-space backends.
//!
//! [`Synthesis`] is the entry point. Configure it with the builder
//! methods, then either advance stage by stage —
//!
//! ```
//! use asyncsynth::{Backend, Synthesis};
//!
//! let checked = Synthesis::new(stg::examples::vme_read_csc())
//!     .backend(Backend::Symbolic)
//!     .check()?;
//! assert!(checked.report().is_implementable());
//! let verified = checked.resolve_csc()?.synthesize()?.verify()?;
//! assert!(verified.verification.passed());
//! # Ok::<(), asyncsynth::PipelineError>(())
//! ```
//!
//! — or run everything at once with [`Synthesis::run`]. Each stage
//! ([`Checked`], [`CscResolved`], [`Synthesized`], [`Verified`]) exposes
//! its artifacts (implementability report, candidate CSC transformations,
//! equations, netlist, verification outcome) and the accumulated
//! [`FlowEvent`] log, and hands its state space, report and verification
//! probe forward for reuse (the CSC-clean fast path recomputes nothing;
//! transformed candidates rebuild their winner's space once after the
//! ranking sweep — see ROADMAP). [`run_batch`] synthesises many
//! controllers concurrently on scoped threads.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use stg::properties::ImplementabilityReport;
use stg::{StateSpace, Stg};
use synth::complex_gate::{synthesize_complex_gates, ComplexGateCircuit};
use synth::csc::CscResolution;
use synth::decompose::{decompose, resubstitute, DecomposedCircuit};
use synth::latch_arch::{synthesize_latch_circuit, LatchCircuit, LatchStyle};
use synth::library::{map_to_library, Library, Mapping};
use synth::NetId;
use verify::{verify_circuit, VerificationReport};

pub use stg::Backend;

/// Target implementation architecture (§3.2 / Fig. 8 / Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Architecture {
    /// One atomic complex gate per signal (§3.2).
    #[default]
    ComplexGate,
    /// Set/reset networks + Muller C-element (Fig. 8a).
    CElement,
    /// Set/reset networks + reset-dominant RS latch (Fig. 8b).
    RsLatch,
    /// Fan-in-bounded decomposition with hazard repair (Fig. 9).
    Decomposed,
}

/// How CSC conflicts are resolved when the input specification has them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CscStrategy {
    /// Try state-signal insertion first, fall back to concurrency
    /// reduction (§2.1 lists both methods).
    #[default]
    Auto,
    /// Only state-signal insertion (Fig. 7).
    SignalInsertion,
    /// Only concurrency reduction.
    ConcurrencyReduction,
    /// Fail if CSC does not hold.
    Fail,
}

/// Options shared by [`Synthesis`] and [`run_batch`].
#[derive(Debug, Clone, Default)]
pub struct SynthesisOptions {
    /// State-space engine used by every stage.
    pub backend: Backend,
    /// Target architecture.
    pub architecture: Architecture,
    /// CSC resolution strategy.
    pub csc: CscStrategy,
    /// Fan-in bound for [`Architecture::Decomposed`] (default 2, the
    /// two-input library of Fig. 9).
    pub max_fanin: Option<usize>,
    /// Skip the final speed-independence verification (it is exhaustive).
    pub skip_verification: bool,
}

/// Errors the pipeline can report.
#[derive(Debug)]
pub enum PipelineError {
    /// The specification failed a §2.1 implementability property that no
    /// automatic transformation fixes (unbounded, inconsistent,
    /// non-persistent, deadlocking).
    NotImplementable(Box<ImplementabilityReport>),
    /// CSC resolution failed under the requested strategy.
    CscUnresolved,
    /// Synthesis failed (carries the underlying message).
    Synthesis(String),
    /// The synthesised circuit failed verification.
    VerificationFailed(Box<VerificationReport>),
    /// Every CSC candidate failed synthesis or verification. Carries the
    /// last candidate's error and the accumulated event log — including
    /// one [`FlowEvent::CandidateRejected`] per candidate, so the
    /// per-candidate diagnostics survive the failure.
    CandidatesExhausted {
        /// The error from the last candidate tried.
        last: Box<PipelineError>,
        /// The full diagnostic log up to the failure.
        events: Vec<FlowEvent>,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::NotImplementable(r) => {
                write!(f, "specification not implementable:\n{r}")
            }
            PipelineError::CscUnresolved => write!(f, "could not resolve CSC conflicts"),
            PipelineError::Synthesis(m) => write!(f, "synthesis failed: {m}"),
            PipelineError::VerificationFailed(r) => {
                write!(f, "verification failed: {}", r.summary())
            }
            PipelineError::CandidatesExhausted { last, events } => {
                let rejected = events
                    .iter()
                    .filter(|e| matches!(e, FlowEvent::CandidateRejected { .. }))
                    .count();
                write!(
                    f,
                    "all {rejected} CSC candidate(s) failed; last error: {last}"
                )
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Which §2.1 method produced a CSC transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CscKind {
    /// A fresh internal state signal was inserted (Fig. 7).
    SignalInsertion,
    /// An ordering arc removed the conflicting states.
    ConcurrencyReduction,
    /// A greedy mix of both methods (multi-conflict controllers).
    Mixed,
}

impl fmt::Display for CscKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CscKind::SignalInsertion => write!(f, "signal insertion"),
            CscKind::ConcurrencyReduction => write!(f, "concurrency reduction"),
            CscKind::Mixed => write!(f, "mixed"),
        }
    }
}

/// A structured description of an applied CSC transformation.
#[derive(Debug, Clone)]
pub struct CscTransformation {
    /// The method used.
    pub kind: CscKind,
    /// Human-readable details (which transitions were split / ordered).
    pub description: String,
    /// State count of the transformed specification's state space.
    pub num_states: usize,
}

impl fmt::Display for CscTransformation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} states): {}",
            self.kind, self.num_states, self.description
        )
    }
}

/// Outcome of the verification stage — three-valued so callers can
/// distinguish "checked and passed" from "deliberately skipped" from
/// "not reached yet".
#[derive(Debug, Clone)]
pub enum Verification {
    /// Verification ran and the circuit is speed-independent.
    Passed(VerificationReport),
    /// Verification was skipped on request
    /// ([`SynthesisOptions::skip_verification`]).
    Skipped,
    /// Verification has not run (yet): the outcome of querying a
    /// [`Synthesized`] stage whose probe was skipped, before
    /// [`Synthesized::verify`] finalises it.
    NotRun,
}

impl Verification {
    /// `true` only when verification ran and passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        matches!(self, Verification::Passed(_))
    }

    /// The report, when verification ran.
    #[must_use]
    pub fn report(&self) -> Option<&VerificationReport> {
        match self {
            Verification::Passed(r) => Some(r),
            _ => None,
        }
    }
}

/// Structured diagnostics emitted by the pipeline stages, replacing the
/// ad-hoc strings of the legacy `run_flow` API.
#[derive(Debug, Clone)]
pub enum FlowEvent {
    /// A state space was built.
    StateSpaceBuilt {
        /// The backend that built it.
        backend: Backend,
        /// Number of states.
        num_states: usize,
    },
    /// The §2.1 property suite ran.
    PropertiesChecked {
        /// All properties hold without transformation.
        implementable: bool,
        /// Number of CSC-violating state pairs.
        csc_conflicts: usize,
    },
    /// CSC candidates were gathered under a strategy.
    CscCandidates {
        /// The strategy used.
        strategy: CscStrategy,
        /// How many candidate transformations were found.
        count: usize,
    },
    /// A CSC transformation was applied to the specification.
    CscApplied(CscTransformation),
    /// A candidate was rejected during synthesis-with-backtracking.
    CandidateRejected {
        /// Index into [`CscResolved::candidates`].
        index: usize,
        /// Why the candidate failed.
        reason: String,
    },
    /// Logic equations were derived and minimised.
    EquationsDerived {
        /// One equation per non-input signal.
        count: usize,
    },
    /// A circuit was produced in the target architecture.
    CircuitSynthesized {
        /// The architecture.
        architecture: Architecture,
        /// Gate count of the netlist.
        gates: usize,
    },
    /// The netlist was mapped onto the technology library.
    LibraryMapped {
        /// Number of mapped cells.
        cells: usize,
    },
    /// Speed-independence verification passed.
    VerificationPassed {
        /// Composed states explored by the Muller-model checker.
        states_explored: usize,
    },
    /// Verification was skipped on request.
    VerificationSkipped,
}

impl fmt::Display for FlowEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowEvent::StateSpaceBuilt {
                backend,
                num_states,
            } => {
                write!(f, "state space built ({backend}): {num_states} states")
            }
            FlowEvent::PropertiesChecked {
                implementable,
                csc_conflicts,
            } => write!(
                f,
                "properties checked: implementable={implementable}, csc conflicts={csc_conflicts}"
            ),
            FlowEvent::CscCandidates { strategy, count } => {
                write!(f, "csc candidates ({strategy:?}): {count}")
            }
            FlowEvent::CscApplied(t) => write!(f, "csc applied: {t}"),
            FlowEvent::CandidateRejected { index, reason } => {
                write!(f, "candidate {index} rejected: {reason}")
            }
            FlowEvent::EquationsDerived { count } => {
                write!(f, "{count} equation(s) derived")
            }
            FlowEvent::CircuitSynthesized {
                architecture,
                gates,
            } => {
                write!(f, "circuit synthesised ({architecture:?}): {gates} gate(s)")
            }
            FlowEvent::LibraryMapped { cells } => write!(f, "mapped onto {cells} cell(s)"),
            FlowEvent::VerificationPassed { states_explored } => {
                write!(f, "verification passed ({states_explored} composed states)")
            }
            FlowEvent::VerificationSkipped => write!(f, "verification skipped"),
        }
    }
}

/// The circuit produced by the pipeline, by architecture.
#[derive(Debug, Clone)]
pub enum Circuit {
    /// Complex-gate implementation.
    Complex(ComplexGateCircuit),
    /// Latch-based implementation.
    Latch(LatchCircuit),
    /// Decomposed implementation.
    Decomposed(DecomposedCircuit),
}

impl Circuit {
    /// The netlist of whichever architecture was produced.
    #[must_use]
    pub fn netlist(&self) -> &synth::Netlist {
        match self {
            Circuit::Complex(c) => c.netlist(),
            Circuit::Latch(c) => c.netlist(),
            Circuit::Decomposed(c) => c.netlist(),
        }
    }

    /// Net of each STG signal, in signal order.
    #[must_use]
    pub fn signal_nets(&self, spec: &Stg) -> Vec<NetId> {
        match self {
            Circuit::Complex(c) => spec.signals().map(|s| c.signal_net(s)).collect(),
            Circuit::Latch(c) => spec.signals().map(|s| c.signal_net(s)).collect(),
            Circuit::Decomposed(c) => spec.signals().map(|s| c.signal_net(s)).collect(),
        }
    }
}

/// The staged pipeline entry point: a builder over a specification.
#[derive(Debug)]
pub struct Synthesis {
    spec: Stg,
    options: SynthesisOptions,
}

impl Synthesis {
    /// Starts a pipeline session on `spec` with default options.
    #[must_use]
    pub fn new(spec: Stg) -> Self {
        Synthesis {
            spec,
            options: SynthesisOptions::default(),
        }
    }

    /// Starts a session with explicit options (the [`run_batch`] path).
    #[must_use]
    pub fn with_options(spec: Stg, options: SynthesisOptions) -> Self {
        Synthesis { spec, options }
    }

    /// Selects the state-space backend.
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> Self {
        self.options.backend = backend;
        self
    }

    /// Selects the target architecture.
    #[must_use]
    pub fn architecture(mut self, architecture: Architecture) -> Self {
        self.options.architecture = architecture;
        self
    }

    /// Selects the CSC resolution strategy.
    #[must_use]
    pub fn csc(mut self, csc: CscStrategy) -> Self {
        self.options.csc = csc;
        self
    }

    /// Bounds gate fan-in for [`Architecture::Decomposed`].
    #[must_use]
    pub fn max_fanin(mut self, max_fanin: usize) -> Self {
        self.options.max_fanin = Some(max_fanin);
        self
    }

    /// Skips the final exhaustive verification.
    #[must_use]
    pub fn skip_verification(mut self, skip: bool) -> Self {
        self.options.skip_verification = skip;
        self
    }

    /// Stage 1 (§2.1): builds the state space and checks boundedness,
    /// consistency, persistency and deadlock-freedom.
    ///
    /// # Errors
    ///
    /// [`PipelineError::NotImplementable`] when a property no automatic
    /// transformation fixes fails. CSC violations do *not* fail this
    /// stage — they are [`Checked::resolve_csc`]'s job.
    pub fn check(self) -> Result<Checked, PipelineError> {
        let mut events = Vec::new();
        let space = match self.options.backend.build(&self.spec) {
            Ok(space) => space,
            Err(e) => {
                return Err(PipelineError::NotImplementable(Box::new(
                    stg::properties::failure_report(e),
                )));
            }
        };
        events.push(FlowEvent::StateSpaceBuilt {
            backend: self.options.backend,
            num_states: space.num_states(),
        });
        let report = stg::properties::report_from_sg(&self.spec, &*space);
        events.push(FlowEvent::PropertiesChecked {
            implementable: report.is_implementable(),
            csc_conflicts: report.csc_conflict_pairs,
        });
        if !report.bounded || !report.consistent || !report.persistent || !report.deadlock_free {
            return Err(PipelineError::NotImplementable(Box::new(report)));
        }
        Ok(Checked {
            spec: self.spec,
            options: self.options,
            space,
            report,
            events,
        })
    }

    /// Runs all four stages: `check → resolve_csc → synthesize → verify`.
    ///
    /// # Errors
    ///
    /// See [`PipelineError`]. Notably, specifications whose only defect is
    /// CSC are repaired automatically under the default options.
    pub fn run(self) -> Result<Verified, PipelineError> {
        self.check()?.resolve_csc()?.synthesize()?.verify()
    }
}

/// Stage 1 artifact: the specification passed every non-CSC §2.1 check.
#[derive(Debug)]
pub struct Checked {
    spec: Stg,
    options: SynthesisOptions,
    space: Box<dyn StateSpace>,
    report: ImplementabilityReport,
    events: Vec<FlowEvent>,
}

impl Checked {
    /// The specification.
    #[must_use]
    pub fn spec(&self) -> &Stg {
        &self.spec
    }

    /// The full implementability report.
    #[must_use]
    pub fn report(&self) -> &ImplementabilityReport {
        &self.report
    }

    /// The state space built by the configured backend.
    #[must_use]
    pub fn state_space(&self) -> &dyn StateSpace {
        &*self.space
    }

    /// Diagnostics accumulated so far.
    #[must_use]
    pub fn events(&self) -> &[FlowEvent] {
        &self.events
    }

    /// Stage 2 (§3.1): gathers candidate CSC-clean specifications.
    ///
    /// When CSC already holds the original specification (and its state
    /// space) is the single candidate; otherwise candidates come from
    /// state-signal insertion, concurrency reduction and the mixed greedy
    /// search, per the configured [`CscStrategy`], best first.
    ///
    /// # Errors
    ///
    /// [`PipelineError::CscUnresolved`] when no candidate exists under the
    /// requested strategy.
    pub fn resolve_csc(self) -> Result<CscResolved, PipelineError> {
        let Checked {
            spec,
            options,
            space,
            report,
            mut events,
        } = self;
        let backend = options.backend;
        let candidates: Vec<CscCandidate> = if report.complete_state_coding {
            vec![CscCandidate {
                spec: spec.clone(),
                transformation: None,
                space: Some(space),
                report: Some(report),
            }]
        } else {
            let mut list: Vec<CscCandidate> = Vec::new();
            let push_insertions = |list: &mut Vec<CscCandidate>| {
                for r in synth::csc::insertion_candidates_with(&spec, backend)
                    .into_iter()
                    .take(12)
                {
                    list.push(CscCandidate::from_resolution(r, CscKind::SignalInsertion));
                }
            };
            let push_reduction = |list: &mut Vec<CscCandidate>| {
                if let Some(r) = synth::csc::resolve_by_concurrency_reduction_with(&spec, backend) {
                    list.push(CscCandidate::from_resolution(
                        r,
                        CscKind::ConcurrencyReduction,
                    ));
                }
            };
            match options.csc {
                CscStrategy::Fail => {}
                CscStrategy::SignalInsertion => push_insertions(&mut list),
                CscStrategy::ConcurrencyReduction => push_reduction(&mut list),
                CscStrategy::Auto => {
                    push_insertions(&mut list);
                    push_reduction(&mut list);
                    // Mixed fall-back for controllers needing several
                    // transformations (e.g. the READ+WRITE spec of Fig. 5
                    // takes a reduction plus a state signal).
                    if let Some(r) = synth::csc::resolve_mixed_with(&spec, 5, backend) {
                        list.push(CscCandidate::from_resolution(r, CscKind::Mixed));
                    }
                }
            }
            events.push(FlowEvent::CscCandidates {
                strategy: options.csc,
                count: list.len(),
            });
            if list.is_empty() {
                return Err(PipelineError::CscUnresolved);
            }
            list
        };
        Ok(CscResolved {
            options,
            candidates,
            events,
        })
    }
}

/// A candidate CSC-clean specification, with the transformation that
/// produced it (`None` for the untransformed original).
#[derive(Debug)]
pub struct CscCandidate {
    /// The (possibly transformed) specification.
    pub spec: Stg,
    /// The applied transformation, if any.
    pub transformation: Option<CscTransformation>,
    /// The candidate's state space, when already built (the identity
    /// candidate reuses the check stage's space).
    space: Option<Box<dyn StateSpace>>,
    /// The candidate's implementability report, when already computed.
    report: Option<ImplementabilityReport>,
}

impl CscCandidate {
    fn from_resolution(r: CscResolution, kind: CscKind) -> Self {
        CscCandidate {
            spec: r.stg,
            transformation: Some(CscTransformation {
                kind,
                description: r.description,
                num_states: r.num_states,
            }),
            space: None,
            report: None,
        }
    }
}

/// Stage 2 artifact: ranked CSC-clean candidates.
#[derive(Debug)]
pub struct CscResolved {
    options: SynthesisOptions,
    candidates: Vec<CscCandidate>,
    events: Vec<FlowEvent>,
}

impl CscResolved {
    /// The candidate transformations, best first.
    #[must_use]
    pub fn candidates(&self) -> &[CscCandidate] {
        &self.candidates
    }

    /// Diagnostics accumulated so far.
    #[must_use]
    pub fn events(&self) -> &[FlowEvent] {
        &self.events
    }

    /// Stage 3 (§3.2–§3.4): synthesises the first candidate that yields a
    /// working circuit in the target architecture.
    ///
    /// Several resolutions can be acceptable at the specification level
    /// (e.g. a state signal and its complement); candidates are tried
    /// best-first and the first one whose synthesised circuit verifies
    /// (unless verification is skipped) wins. Rejections are recorded as
    /// [`FlowEvent::CandidateRejected`].
    ///
    /// # Errors
    ///
    /// The last candidate's error when all of them fail.
    pub fn synthesize(mut self) -> Result<Synthesized, PipelineError> {
        let mut last_error = PipelineError::CscUnresolved;
        let candidates = std::mem::take(&mut self.candidates);
        let tried = candidates.len();
        for (index, candidate) in candidates.into_iter().enumerate() {
            match synthesize_candidate(candidate, &self.options) {
                Ok((mut synthesized, mut events)) => {
                    if let Some(t) = &synthesized.transformation {
                        self.events.push(FlowEvent::CscApplied(t.clone()));
                    }
                    self.events.append(&mut events);
                    synthesized.events = self.events;
                    return Ok(synthesized);
                }
                Err(e) => {
                    self.events.push(FlowEvent::CandidateRejected {
                        index,
                        reason: e.to_string(),
                    });
                    last_error = e;
                }
            }
        }
        if tried > 1 {
            // Backtracking exhausted several candidates: surface the whole
            // rejection log, not just the last error.
            Err(PipelineError::CandidatesExhausted {
                last: Box::new(last_error),
                events: self.events,
            })
        } else {
            Err(last_error)
        }
    }
}

/// Synthesises and (unless skipped) verification-probes one candidate.
fn synthesize_candidate(
    candidate: CscCandidate,
    options: &SynthesisOptions,
) -> Result<(Synthesized, Vec<FlowEvent>), PipelineError> {
    let mut events = Vec::new();
    let CscCandidate {
        spec,
        transformation,
        space,
        report,
    } = candidate;
    let space: Box<dyn StateSpace> = match space {
        Some(space) => space,
        None => {
            let space = options
                .backend
                .build(&spec)
                .map_err(|e| PipelineError::Synthesis(e.to_string()))?;
            events.push(FlowEvent::StateSpaceBuilt {
                backend: options.backend,
                num_states: space.num_states(),
            });
            space
        }
    };
    let report = match report {
        Some(report) => report,
        None => stg::properties::report_from_sg(&spec, &*space),
    };

    // Next-state functions and equations (§3.2).
    let complex = synthesize_complex_gates(&spec, &*space)
        .map_err(|e| PipelineError::Synthesis(e.to_string()))?;
    let equations_text = complex.display_equations(&spec);
    events.push(FlowEvent::EquationsDerived {
        count: complex.equations().len(),
    });

    // Architecture mapping (§3.4).
    let max_fanin = options.max_fanin.unwrap_or(2);
    let circuit = match options.architecture {
        Architecture::ComplexGate => Circuit::Complex(complex.clone()),
        Architecture::CElement => Circuit::Latch(
            synthesize_latch_circuit(&spec, &*space, LatchStyle::CElement)
                .map_err(|e| PipelineError::Synthesis(e.to_string()))?,
        ),
        Architecture::RsLatch => Circuit::Latch(
            synthesize_latch_circuit(&spec, &*space, LatchStyle::RsLatch)
                .map_err(|e| PipelineError::Synthesis(e.to_string()))?,
        ),
        Architecture::Decomposed => {
            // Fig. 9: try the naive decomposition; if it is hazardous,
            // repair by resubstitution (multiple acknowledgment).
            let naive = decompose(&spec, &complex, max_fanin);
            let nets: Vec<NetId> = spec.signals().map(|s| naive.signal_net(s)).collect();
            let naive_report = verify_circuit(&spec, &*space, naive.netlist(), &nets);
            if naive_report.is_speed_independent() {
                Circuit::Decomposed(naive)
            } else {
                Circuit::Decomposed(resubstitute(&spec, &*space, &naive))
            }
        }
    };
    events.push(FlowEvent::CircuitSynthesized {
        architecture: options.architecture,
        gates: circuit.netlist().num_gates(),
    });

    // Technology-library sanity (standard library; the two-input library
    // only fits decomposed netlists).
    let library = match options.architecture {
        Architecture::Decomposed => Library::two_input(),
        _ => Library::standard(),
    };
    let mapping = map_to_library(circuit.netlist(), &library).ok();
    if let Some(m) = &mapping {
        events.push(FlowEvent::LibraryMapped {
            cells: m.num_cells(),
        });
    }

    // Verification probe (§2.1 "implementation verification"). Latch
    // architectures are certified via their atomic equivalent plus the
    // monotonous-cover condition (§3.4); gate-level netlists go through
    // the strict Muller-model checker directly.
    let probe = if options.skip_verification {
        None
    } else {
        let v = match &circuit {
            Circuit::Latch(latch) => {
                let violations =
                    synth::latch_arch::monotonic_violations(&spec, &*space, &latch.covers);
                if !violations.is_empty() {
                    return Err(PipelineError::Synthesis(format!(
                        "{} monotonous-cover violation(s) in the latch networks",
                        violations.len()
                    )));
                }
                let (atomic, nets) = latch.atomic_netlist(&spec);
                verify_circuit(&spec, &*space, &atomic, &nets)
            }
            _ => {
                let nets = circuit.signal_nets(&spec);
                verify_circuit(&spec, &*space, circuit.netlist(), &nets)
            }
        };
        if !v.is_speed_independent() {
            return Err(PipelineError::VerificationFailed(Box::new(v)));
        }
        Some(v)
    };

    Ok((
        Synthesized {
            spec,
            options: options.clone(),
            space,
            transformation,
            report,
            circuit,
            equations_text,
            mapping,
            probe,
            events: Vec::new(),
        },
        events,
    ))
}

/// Stage 3 artifact: a synthesised circuit with its equations, mapping
/// and (unless skipped) a passed verification probe.
#[derive(Debug)]
pub struct Synthesized {
    spec: Stg,
    options: SynthesisOptions,
    space: Box<dyn StateSpace>,
    transformation: Option<CscTransformation>,
    report: ImplementabilityReport,
    circuit: Circuit,
    equations_text: String,
    mapping: Option<Mapping>,
    probe: Option<VerificationReport>,
    events: Vec<FlowEvent>,
}

impl Synthesized {
    /// The (possibly CSC-transformed) specification actually synthesised.
    #[must_use]
    pub fn spec(&self) -> &Stg {
        &self.spec
    }

    /// The applied CSC transformation, if any.
    #[must_use]
    pub fn transformation(&self) -> Option<&CscTransformation> {
        self.transformation.as_ref()
    }

    /// The implementability report of the final specification.
    #[must_use]
    pub fn report(&self) -> &ImplementabilityReport {
        &self.report
    }

    /// The synthesised circuit.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Pretty-printed logic equations.
    #[must_use]
    pub fn equations_text(&self) -> &str {
        &self.equations_text
    }

    /// The library mapping, when the netlist fits the library.
    #[must_use]
    pub fn mapping(&self) -> Option<&Mapping> {
        self.mapping.as_ref()
    }

    /// The final specification's state space.
    #[must_use]
    pub fn state_space(&self) -> &dyn StateSpace {
        &*self.space
    }

    /// Diagnostics accumulated so far.
    #[must_use]
    pub fn events(&self) -> &[FlowEvent] {
        &self.events
    }

    /// The verification outcome at this stage: [`Verification::Passed`]
    /// when the candidate-selection probe ran, [`Verification::NotRun`]
    /// when verification was skipped and has not happened yet.
    #[must_use]
    pub fn verification(&self) -> Verification {
        match &self.probe {
            Some(v) => Verification::Passed(v.clone()),
            None => Verification::NotRun,
        }
    }

    /// Stage 4: finalises the verification outcome.
    ///
    /// When verification was enabled the probe already ran during
    /// candidate selection (a candidate whose circuit fails verification
    /// never reaches this stage) and its report is reused — nothing is
    /// recomputed. With [`SynthesisOptions::skip_verification`] the
    /// outcome is [`Verification::Skipped`].
    ///
    /// # Errors
    ///
    /// Never fails today; the `Result` keeps the stage API uniform and
    /// leaves room for re-verification policies.
    pub fn verify(self) -> Result<Verified, PipelineError> {
        let Synthesized {
            spec,
            options,
            space,
            transformation,
            report,
            circuit,
            equations_text,
            mapping,
            probe,
            mut events,
        } = self;
        let verification = if options.skip_verification {
            events.push(FlowEvent::VerificationSkipped);
            Verification::Skipped
        } else {
            // The probe runs during candidate selection whenever
            // verification is enabled, so it is always present here (and
            // already latch-aware: latch circuits were certified via
            // their atomic equivalent plus the monotonous-cover check).
            let v = probe.expect("verification probe runs when not skipped");
            events.push(FlowEvent::VerificationPassed {
                states_explored: v.states_explored,
            });
            Verification::Passed(v)
        };
        Ok(Verified {
            spec,
            transformation,
            report,
            circuit,
            equations_text,
            mapping,
            verification,
            space,
            events,
        })
    }
}

/// Stage 4 artifact: everything the pipeline produced.
#[derive(Debug)]
pub struct Verified {
    /// The (possibly CSC-transformed) specification actually synthesised.
    pub spec: Stg,
    /// The applied CSC transformation, if any.
    pub transformation: Option<CscTransformation>,
    /// The implementability report of the final specification.
    pub report: ImplementabilityReport,
    /// The synthesised circuit.
    pub circuit: Circuit,
    /// Pretty-printed logic equations (complex-gate view of the spec).
    pub equations_text: String,
    /// Library mapping of the final netlist.
    pub mapping: Option<Mapping>,
    /// The verification outcome (three-valued).
    pub verification: Verification,
    space: Box<dyn StateSpace>,
    events: Vec<FlowEvent>,
}

impl Verified {
    /// The final specification's state space.
    #[must_use]
    pub fn state_space(&self) -> &dyn StateSpace {
        &*self.space
    }

    /// Number of states of the final specification.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.space.num_states()
    }

    /// The full diagnostic log, in stage order.
    #[must_use]
    pub fn events(&self) -> &[FlowEvent] {
        &self.events
    }
}

/// Synthesises many controllers concurrently on scoped threads (one
/// worker per available core, work-stealing over the input list).
///
/// Results are returned in input order; per-spec failures do not abort
/// the batch.
#[must_use]
pub fn run_batch(
    specs: &[Stg],
    options: &SynthesisOptions,
) -> Vec<Result<Verified, PipelineError>> {
    let n = specs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(n);
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Result<Verified, PipelineError>>>> =
        Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = Synthesis::with_options(specs[i].clone(), options.clone()).run();
                slots.lock().expect("no panics while holding the lock")[i] = Some(result);
            });
        }
    });
    slots
        .into_inner()
        .expect("worker threads joined")
        .into_iter()
        .map(|slot| slot.expect("every slot filled by a worker"))
        .collect()
}
