//! Command-line front end: check, synthesise and inspect STGs in the `.g`
//! (astg/petrify) format.
//!
//! ```text
//! asyncsynth check  <file.g>             # §2.1 implementability report
//! asyncsynth synth  <file.g> [options]   # full flow, prints equations+netlist
//! asyncsynth wave   <file.g>             # one canonical cycle as waveforms
//! asyncsynth reduce <file.g>             # structural reductions + invariants
//!
//! synth options:
//!   --arch complex|celement|rs|decomposed   (default: complex)
//!   --backend explicit|symbolic             (default: explicit)
//!   --fanin N                               (decomposed fan-in bound)
//!   --assume "a-<b+"                        relative-timing assumption
//!   --json                                  machine-readable output
//! ```

use std::process::ExitCode;

use asyncsynth::{Architecture, Backend, Synthesis, SynthesisOptions, Verification, Verified};
use stg::parse::parse_g;
use stg::StateGraph;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let usage = "usage: asyncsynth <check|synth|wave|reduce> <file.g> [options]";
    let cmd = args.first().ok_or(usage)?;
    let path = args.get(1).ok_or(usage)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let spec = parse_g(&text).map_err(|e| format!("{path}: {e}"))?;
    match cmd.as_str() {
        "check" => check(&spec),
        "synth" => synth(&spec, &args[2..]),
        "wave" => wave(&spec),
        "reduce" => reduce(&spec),
        other => Err(format!("unknown command {other:?}\n{usage}")),
    }
}

fn check(spec: &stg::Stg) -> Result<(), String> {
    let report = stg::properties::check_implementability(spec);
    println!("model: {}", spec.name());
    println!("{report}");
    if let Ok(sg) = StateGraph::build(spec) {
        let conflicts = stg::encoding::csc_conflicts(spec, &sg);
        for c in conflicts {
            let code: String = c.code.iter().map(|&b| if b { '1' } else { '0' }).collect();
            println!(
                "  CSC conflict: states s{} / s{} share code {code}",
                c.states.0, c.states.1
            );
        }
    }
    Ok(())
}

fn synth(spec: &stg::Stg, opts: &[String]) -> Result<(), String> {
    let mut options = SynthesisOptions::default();
    let mut assumptions: Vec<timing::TimingAssumption> = Vec::new();
    let mut json = false;
    let mut i = 0;
    while i < opts.len() {
        match opts[i].as_str() {
            "--arch" => {
                i += 1;
                let v = opts.get(i).ok_or("--arch needs a value")?;
                options.architecture = match v.as_str() {
                    "complex" => Architecture::ComplexGate,
                    "celement" => Architecture::CElement,
                    "rs" => Architecture::RsLatch,
                    "decomposed" => Architecture::Decomposed,
                    other => return Err(format!("unknown architecture {other:?}")),
                };
            }
            "--backend" => {
                i += 1;
                let v = opts.get(i).ok_or("--backend needs a value")?;
                options.backend = v.parse::<Backend>()?;
            }
            "--fanin" => {
                i += 1;
                let v = opts.get(i).ok_or("--fanin needs a value")?;
                options.max_fanin = Some(v.parse().map_err(|_| "bad --fanin value")?);
            }
            "--assume" => {
                i += 1;
                let v = opts.get(i).ok_or("--assume needs earlier<later")?;
                let (a, b) = v
                    .split_once('<')
                    .ok_or("assumption syntax: earlier<later")?;
                assumptions.push(timing::TimingAssumption::new(a.trim(), b.trim()));
            }
            "--json" => json = true,
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    let spec = if assumptions.is_empty() {
        spec.clone()
    } else {
        timing::apply_assumptions(spec, &assumptions).map_err(|e| e.to_string())?
    };
    let backend = options.backend;
    let result = Synthesis::with_options(spec, options)
        .run()
        .map_err(|e| e.to_string())?;
    if json {
        println!("{}", render_json(&result, backend));
    } else {
        render_text(&result, backend);
    }
    Ok(())
}

fn render_text(result: &Verified, backend: Backend) {
    println!("model: {}", result.spec.name());
    println!("backend: {backend}");
    if let Some(t) = &result.transformation {
        println!("csc: {t}");
    }
    println!("states: {}", result.num_states());
    println!("\nequations:\n{}", result.equations_text);
    println!("\nnetlist:\n{}", result.circuit.netlist().describe());
    match &result.verification {
        Verification::Passed(v) => println!("verification: {}", v.summary()),
        Verification::Skipped => println!("verification: skipped"),
        Verification::NotRun => println!("verification: not run"),
    }
    println!("\nevents:");
    for e in result.events() {
        println!("  {e}");
    }
}

fn render_json(result: &Verified, backend: Backend) -> String {
    let spec = &result.spec;
    let mut out = String::from("{");
    push_kv(&mut out, "model", &json_str(spec.name()));
    push_kv(&mut out, "backend", &json_str(backend.name()));
    push_kv(&mut out, "states", &result.num_states().to_string());
    match &result.transformation {
        Some(t) => {
            let csc = format!(
                "{{\"kind\":{},\"description\":{},\"states\":{}}}",
                json_str(&t.kind.to_string()),
                json_str(&t.description),
                t.num_states
            );
            push_kv(&mut out, "csc", &csc);
        }
        None => push_kv(&mut out, "csc", "null"),
    }
    let equations: Vec<String> = result.equations_text.lines().map(json_str).collect();
    push_kv(&mut out, "equations", &format!("[{}]", equations.join(",")));
    let netlist = result.circuit.netlist();
    let gates: Vec<String> = netlist
        .gates()
        .iter()
        .map(|g| {
            let inputs: Vec<String> = g
                .inputs
                .iter()
                .map(|&n| json_str(netlist.net_name(n)))
                .collect();
            format!(
                "{{\"output\":{},\"kind\":{},\"inputs\":[{}]}}",
                json_str(netlist.net_name(g.output)),
                json_str(g.kind.name()),
                inputs.join(",")
            )
        })
        .collect();
    push_kv(&mut out, "gates", &format!("[{}]", gates.join(",")));
    match result.mapping.as_ref() {
        Some(m) => push_kv(
            &mut out,
            "mapping",
            &format!("{{\"cells\":{},\"area\":{}}}", m.num_cells(), m.area()),
        ),
        None => push_kv(&mut out, "mapping", "null"),
    }
    let (status, states_explored) = match &result.verification {
        Verification::Passed(v) => ("passed", Some(v.states_explored)),
        Verification::Skipped => ("skipped", None),
        Verification::NotRun => ("not_run", None),
    };
    push_kv(&mut out, "verification", &json_str(status));
    match states_explored {
        Some(n) => push_kv(&mut out, "composed_states", &n.to_string()),
        None => push_kv(&mut out, "composed_states", "null"),
    }
    let events: Vec<String> = result
        .events()
        .iter()
        .map(|e| json_str(&e.to_string()))
        .collect();
    push_kv(&mut out, "events", &format!("[{}]", events.join(",")));
    out.push('}');
    out
}

fn push_kv(out: &mut String, key: &str, value: &str) {
    if out.len() > 1 {
        out.push(',');
    }
    out.push_str(&json_str(key));
    out.push(':');
    out.push_str(value);
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn wave(spec: &stg::Stg) -> Result<(), String> {
    let sg = StateGraph::build(spec).map_err(|e| e.to_string())?;
    let cycle = stg::waveform::canonical_cycle(&sg, 1000);
    if cycle.is_empty() {
        return Err("no cycle through the initial state".to_owned());
    }
    println!(
        "trace: {}",
        stg::waveform::render_trace_header(spec, &cycle)
    );
    print!("{}", stg::waveform::render_waveforms(spec, &sg, &cycle));
    Ok(())
}

fn reduce(spec: &stg::Stg) -> Result<(), String> {
    let (reduced, stats) = petri::reduce::reduce_linear(spec.net().clone());
    println!(
        "reduced: {} places, {} transitions ({} rule applications)",
        reduced.num_places(),
        reduced.num_transitions(),
        stats.total()
    );
    print!("{}", reduced.describe());
    println!("\nplace invariants:");
    for inv in petri::invariant::place_invariants(&reduced) {
        println!("  {}", inv.display(&reduced));
    }
    let comps = petri::invariant::sm_components(&reduced);
    println!("state-machine components: {}", comps.len());
    Ok(())
}
