//! Command-line front end: check, synthesise and inspect STGs in the `.g`
//! (astg/petrify) format.
//!
//! ```text
//! asyncsynth check  <file.g>             # §2.1 implementability report
//! asyncsynth synth  <file.g> [options]   # full flow, prints equations+netlist
//! asyncsynth wave   <file.g>             # one canonical cycle as waveforms
//! asyncsynth reduce <file.g>             # structural reductions + invariants
//!
//! synth options:
//!   --arch complex|celement|rs|decomposed   (default: complex)
//!   --fanin N                               (decomposed fan-in bound)
//!   --assume "a-<b+"                        relative-timing assumption
//! ```

use std::process::ExitCode;

use asyncsynth::flow::{run_flow, Architecture, FlowOptions};
use stg::parse::parse_g;
use stg::StateGraph;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let usage = "usage: asyncsynth <check|synth|wave|reduce> <file.g> [options]";
    let cmd = args.first().ok_or(usage)?;
    let path = args.get(1).ok_or(usage)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let spec = parse_g(&text).map_err(|e| format!("{path}: {e}"))?;
    match cmd.as_str() {
        "check" => check(&spec),
        "synth" => synth(&spec, &args[2..]),
        "wave" => wave(&spec),
        "reduce" => reduce(&spec),
        other => Err(format!("unknown command {other:?}\n{usage}")),
    }
}

fn check(spec: &stg::Stg) -> Result<(), String> {
    let report = stg::properties::check_implementability(spec);
    println!("model: {}", spec.name());
    println!("{report}");
    if let Ok(sg) = StateGraph::build(spec) {
        let conflicts = stg::encoding::csc_conflicts(spec, &sg);
        for c in conflicts {
            let code: String = c.code.iter().map(|&b| if b { '1' } else { '0' }).collect();
            println!(
                "  CSC conflict: states s{} / s{} share code {code}",
                c.states.0, c.states.1
            );
        }
    }
    Ok(())
}

fn synth(spec: &stg::Stg, opts: &[String]) -> Result<(), String> {
    let mut options = FlowOptions::default();
    let mut assumptions: Vec<timing::TimingAssumption> = Vec::new();
    let mut i = 0;
    while i < opts.len() {
        match opts[i].as_str() {
            "--arch" => {
                i += 1;
                let v = opts.get(i).ok_or("--arch needs a value")?;
                options.architecture = match v.as_str() {
                    "complex" => Architecture::ComplexGate,
                    "celement" => Architecture::CElement,
                    "rs" => Architecture::RsLatch,
                    "decomposed" => Architecture::Decomposed,
                    other => return Err(format!("unknown architecture {other:?}")),
                };
            }
            "--fanin" => {
                i += 1;
                let v = opts.get(i).ok_or("--fanin needs a value")?;
                options.max_fanin = Some(v.parse().map_err(|_| "bad --fanin value")?);
            }
            "--assume" => {
                i += 1;
                let v = opts.get(i).ok_or("--assume needs earlier<later")?;
                let (a, b) = v.split_once('<').ok_or("assumption syntax: earlier<later")?;
                assumptions.push(timing::TimingAssumption::new(a.trim(), b.trim()));
            }
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    let spec = if assumptions.is_empty() {
        spec.clone()
    } else {
        timing::apply_assumptions(spec, &assumptions).map_err(|e| e.to_string())?
    };
    let result = run_flow(&spec, &options).map_err(|e| e.to_string())?;
    println!("model: {}", result.spec.name());
    if let Some(t) = &result.csc_transformation {
        println!("csc: {t}");
    }
    println!("states: {}", result.state_graph.num_states());
    println!("\nequations:\n{}", result.equations_text);
    println!("\nnetlist:\n{}", result.circuit.netlist().describe());
    if let Some(v) = &result.verification {
        println!("verification: {}", v.summary());
    }
    Ok(())
}

fn wave(spec: &stg::Stg) -> Result<(), String> {
    let sg = StateGraph::build(spec).map_err(|e| e.to_string())?;
    let cycle = stg::waveform::canonical_cycle(&sg, 1000);
    if cycle.is_empty() {
        return Err("no cycle through the initial state".to_owned());
    }
    println!("trace: {}", stg::waveform::render_trace_header(spec, &cycle));
    print!("{}", stg::waveform::render_waveforms(spec, &sg, &cycle));
    Ok(())
}

fn reduce(spec: &stg::Stg) -> Result<(), String> {
    let (reduced, stats) = petri::reduce::reduce_linear(spec.net().clone());
    println!(
        "reduced: {} places, {} transitions ({} rule applications)",
        reduced.num_places(),
        reduced.num_transitions(),
        stats.total()
    );
    print!("{}", reduced.describe());
    println!("\nplace invariants:");
    for inv in petri::invariant::place_invariants(&reduced) {
        println!("  {}", inv.display(&reduced));
    }
    let comps = petri::invariant::sm_components(&reduced);
    println!("state-machine components: {}", comps.len());
    Ok(())
}
