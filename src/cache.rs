//! The on-disk, content-addressed result cache of the synthesis service.
//!
//! Synthesis of an STG flow (check → CSC → logic → verify) is
//! deterministic in `(specification, options)`, so its results are
//! perfectly cacheable. Keys are SHA-256 digests over the
//! [`stg::canon`] canonical form of the specification salted with the
//! flow options and a schema version ([`crate::pipeline::cache_key`]);
//! values are JSON documents (usually a
//! [`crate::summary::SynthesisSummary`] or a CSC stage checkpoint).
//!
//! Robustness properties:
//!
//! * **Atomic writes** — entries are written to a temporary file in the
//!   cache directory and `rename`d into place, so concurrent workers and
//!   crashed processes can never leave a half-written entry behind;
//! * **Self-verifying entries** — every entry embeds the SHA-256 of its
//!   payload and its schema version. A corrupted, truncated or
//!   version-skewed entry is detected on load, counted, deleted and
//!   treated as a miss — never trusted;
//! * **Key-echo** — entries also record their own key, so a file that
//!   was moved or hand-edited to a different name cannot impersonate
//!   another specification's result.
//!
//! Layout: `<root>/<first two hex digits>/<64-hex-digit key>.json`
//! (fan-out keeps directories small under heavy traffic).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use stg::canon::{digest_bytes, Digest};

use crate::json::Json;

/// On-disk entry schema version; bump on breaking layout changes.
pub const CACHE_FORMAT_VERSION: u64 = 1;

/// Monotone counters describing a cache's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Entries served.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Entries rejected as corrupt (and deleted).
    pub corrupt: u64,
}

/// A content-addressed store of synthesis results.
#[derive(Debug)]
pub struct ResultCache {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    corrupt: AtomicU64,
    tmp_counter: AtomicU64,
}

impl ResultCache {
    /// Opens (creating if necessary) a cache rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl AsRef<Path>) -> io::Result<ResultCache> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(ResultCache {
            root,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// The cache's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The entry path for a key.
    #[must_use]
    pub fn entry_path(&self, key: &Digest) -> PathBuf {
        let hex = key.to_hex();
        self.root.join(&hex[..2]).join(format!("{hex}.json"))
    }

    /// Loads and verifies the payload stored under `key`.
    ///
    /// Returns `None` on a miss *and* on a corrupt entry (which is
    /// deleted and counted in [`CacheStats::corrupt`]).
    #[must_use]
    pub fn load(&self, key: &Digest) -> Option<Json> {
        let path = self.entry_path(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match verify_entry(key, &text) {
            Ok(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            Err(_) => {
                // Corrupt: never trust it; drop the file so the slot heals
                // on the next store.
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Stores `payload` under `key`, atomically (tmp file + rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a failed store leaves no partial entry.
    pub fn store(&self, key: &Digest, payload: &Json) -> io::Result<()> {
        let path = self.entry_path(key);
        let dir = path.parent().expect("entry paths have a parent");
        std::fs::create_dir_all(dir)?;
        let payload_text = payload.render();
        let entry = Json::obj(vec![
            ("version", Json::Num(CACHE_FORMAT_VERSION as f64)),
            ("key", Json::str(key.to_hex())),
            (
                "checksum",
                Json::str(digest_bytes(payload_text.as_bytes()).to_hex()),
            ),
            ("payload", payload.clone()),
        ]);
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, entry.render())?;
        std::fs::rename(&tmp, &path)?;
        self.stores.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// A snapshot of the traffic counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
        }
    }
}

/// Parses an entry document and verifies version, key echo and payload
/// checksum; returns the payload on success.
fn verify_entry(key: &Digest, text: &str) -> Result<Json, String> {
    let doc = Json::parse(text)?;
    if doc.get("version").and_then(Json::as_u64) != Some(CACHE_FORMAT_VERSION) {
        return Err("cache entry version mismatch".to_owned());
    }
    if doc.get("key").and_then(Json::as_str) != Some(key.to_hex().as_str()) {
        return Err("cache entry key mismatch".to_owned());
    }
    let checksum = doc
        .get("checksum")
        .and_then(Json::as_str)
        .ok_or("missing checksum")?;
    let payload = doc.get("payload").ok_or("missing payload")?;
    if digest_bytes(payload.render().as_bytes()).to_hex() != checksum {
        return Err("payload checksum mismatch".to_owned());
    }
    Ok(payload.clone())
}

#[cfg(test)]
mod tests {
    use super::ResultCache;
    use crate::json::Json;
    use stg::canon::digest_bytes;

    fn temp_root(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "asyncsynth-cache-test-{}-{tag}",
            std::process::id()
        ))
    }

    #[test]
    fn store_load_and_corruption() {
        let root = temp_root("basic");
        let _ = std::fs::remove_dir_all(&root);
        let cache = ResultCache::open(&root).expect("open");
        let key = digest_bytes(b"some spec");
        assert!(cache.load(&key).is_none());
        let payload = Json::obj(vec![("answer", Json::num(42))]);
        cache.store(&key, &payload).expect("store");
        assert_eq!(cache.load(&key), Some(payload.clone()));

        // Tamper with the payload: the checksum must catch it.
        let path = cache.entry_path(&key);
        let tampered = std::fs::read_to_string(&path)
            .expect("entry readable")
            .replace("42", "43");
        std::fs::write(&path, tampered).expect("tamper");
        assert_eq!(cache.load(&key), None, "tampered entry rejected");
        assert!(!path.exists(), "corrupt entry deleted");

        // Truncated garbage is also rejected.
        cache.store(&key, &payload).expect("restore");
        std::fs::write(&path, "{\"version\":1,").expect("truncate");
        assert_eq!(cache.load(&key), None);

        // A valid entry copied under the wrong key must not be served.
        cache.store(&key, &payload).expect("restore again");
        let other = digest_bytes(b"other spec");
        let other_path = cache.entry_path(&other);
        std::fs::create_dir_all(other_path.parent().unwrap()).unwrap();
        std::fs::copy(&path, &other_path).expect("copy");
        assert_eq!(cache.load(&other), None, "key echo rejects moved entry");

        let stats = cache.stats();
        assert_eq!(stats.stores, 3);
        assert_eq!(stats.corrupt, 3);
        assert!(stats.hits >= 1 && stats.misses >= 3);
        let _ = std::fs::remove_dir_all(&root);
    }
}
