//! `asyncsynth` — Asynchronous interface specification, analysis and
//! synthesis.
//!
//! A from-scratch Rust reproduction of the DAC'98 tutorial
//! *"Asynchronous Interface Specification, Analysis and Synthesis"*
//! (Kishinevsky, Cortadella, Kondratyev, Lavagno): the Petri-net / Signal
//! Transition Graph design flow for speed-independent interface
//! controllers, in the style of the `petrify` tool family.
//!
//! The workspace is organised bottom-up:
//!
//! | crate | role |
//! |-------|------|
//! | [`petri`] | net kernel: token game, reachability, invariants, reductions, unfoldings, BDD traversal |
//! | [`bdd`] | hash-consed ROBDD package |
//! | [`boolmin`] | two-level logic: covers, exact/heuristic minimisation, factoring |
//! | [`stg`] | Signal Transition Graphs: `.g` parsing, state graphs, consistency, CSC, persistency |
//! | [`synth`] | logic synthesis: regions, next-state functions, CSC resolution, latch architectures, decomposition, mapping |
//! | [`regions`] | theory of regions: PN extraction / back-annotation |
//! | [`timing`] | time separation of events, cycle time, relative-timing optimisation |
//! | [`sim`] | event-driven gate-level simulation with glitch monitors |
//! | [`verify`] | speed-independence and conformance checking |
//!
//! This crate ties them together in [`flow`]: one call runs the entire
//! §3 pipeline (property checking → CSC resolution → synthesis in three
//! architectures → decomposition with hazard repair → verification).
//!
//! # Quickstart
//!
//! ```
//! use asyncsynth::flow::{run_flow, FlowOptions};
//!
//! let spec = stg::examples::vme_read(); // Fig. 3 of the paper
//! let result = run_flow(&spec, &FlowOptions::default())?;
//! assert!(result.verified, "the synthesised circuit is speed-independent");
//! println!("{}", result.equations_text);
//! # Ok::<(), asyncsynth::flow::FlowError>(())
//! ```

pub mod flow;

pub use flow::{run_flow, FlowError, FlowOptions, FlowResult};
