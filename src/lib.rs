//! `asyncsynth` — Asynchronous interface specification, analysis and
//! synthesis.
//!
//! A from-scratch Rust reproduction of the DAC'98 tutorial
//! *"Asynchronous Interface Specification, Analysis and Synthesis"*
//! (Kishinevsky, Cortadella, Kondratyev, Lavagno): the Petri-net / Signal
//! Transition Graph design flow for speed-independent interface
//! controllers, in the style of the `petrify` tool family.
//!
//! The workspace is organised bottom-up:
//!
//! | crate | role |
//! |-------|------|
//! | [`petri`] | net kernel: token game, reachability, invariants, reductions, unfoldings, BDD traversal |
//! | [`bdd`] | hash-consed ROBDD package |
//! | [`boolmin`] | two-level logic: covers, exact/heuristic minimisation, factoring |
//! | [`stg`] | Signal Transition Graphs: `.g` parsing, pluggable state spaces ([`stg::StateSpace`]: explicit [`stg::StateGraph`] and BDD-backed [`stg::SymbolicStateSpace`]), consistency, CSC, persistency |
//! | [`synth`] | logic synthesis: regions, next-state functions, CSC resolution, latch architectures, decomposition, mapping |
//! | `regions` | theory of regions: PN extraction / back-annotation |
//! | [`timing`] | time separation of events, cycle time, relative-timing optimisation |
//! | `sim` | event-driven gate-level simulation with glitch monitors |
//! | [`verify`] | speed-independence and conformance checking |
//! | `server` | the synthesis service: job queue, worker pool, NDJSON protocol, CLI |
//!
//! This crate ties them together in [`pipeline`]: the §3 flow (property
//! checking → CSC resolution → synthesis in three architectures →
//! decomposition with hazard repair → verification) as a staged, typed
//! session — [`Synthesis`] advances through [`Checked`] → [`CscResolved`]
//! → [`Synthesized`] → [`Verified`], each stage exposing its artifacts
//! for inspection, caching and rerouting. Every stage runs on a
//! pluggable state-space [`Backend`]: `Explicit` breadth-first
//! reachability or `Symbolic` BDD traversal. [`run_batch`] synthesises
//! many controllers concurrently; [`FlowEvent`] gives structured
//! diagnostics. The legacy one-shot [`flow::run_flow`] remains as a
//! deprecated shim.
//!
//! The flow is deterministic in its inputs, so results are
//! content-addressable: [`run_cached`] consults an on-disk
//! [`ResultCache`] (keys from [`stg::canon`], per-stage entries, atomic
//! self-verifying writes) before running anything, and the `server`
//! crate turns that into a persistent synthesis daemon with a job
//! queue and worker pool (`asyncsynth serve` / `asyncsynth submit`).
//!
//! # Quickstart
//!
//! ```
//! use asyncsynth::{Backend, Synthesis};
//!
//! let spec = stg::examples::vme_read(); // Fig. 3 of the paper
//!
//! // Stage by stage: inspect the implementability report, then let the
//! // pipeline resolve CSC, synthesise and verify.
//! let checked = Synthesis::new(spec).backend(Backend::Symbolic).check()?;
//! assert!(!checked.report().complete_state_coding, "Fig. 3 lacks CSC");
//! let result = checked.resolve_csc()?.synthesize()?.verify()?;
//! assert!(result.verification.passed(), "speed-independent");
//! println!("{}", result.equations_text);
//!
//! // Or all at once:
//! let result = Synthesis::new(stg::examples::vme_read_csc()).run()?;
//! assert!(result.transformation.is_none(), "Fig. 7 is already CSC-clean");
//! # Ok::<(), asyncsynth::PipelineError>(())
//! ```
//!
//! # Batching
//!
//! ```
//! use asyncsynth::{run_batch, SynthesisOptions};
//!
//! let specs = [stg::examples::vme_read(), stg::examples::vme_read_csc()];
//! let results = run_batch(&specs, &SynthesisOptions::default());
//! assert!(results.iter().all(|r| r.is_ok()));
//! ```

pub mod cache;
pub mod flow;
pub mod json;
pub mod pipeline;
pub mod summary;
pub mod trace;

/// The workspace's dependency-free telemetry substrate (spans, counter
/// maps, the process-wide registry), re-exported so downstream users
/// reach it as `asyncsynth::telemetry`.
pub use telemetry;

pub use cache::{CacheStats, ResultCache};
pub use json::Json;
pub use pipeline::{
    cache_key, flow_metrics, run_batch, run_cached, run_cached_with, Architecture, Backend,
    CacheOutcome, CacheStage, CachedRun, Checked, Circuit, CscCandidate, CscKind, CscResolved,
    CscStrategy, CscTransformation, FlowEvent, FlowObserver, NullObserver, PipelineError,
    SweepOptions, SweepStats, Synthesis, SynthesisOptions, Synthesized, Verification, Verified,
    VerifyOptions, VerifyStrategy,
};
pub use summary::SynthesisSummary;
pub use trace::TraceBuilder;
