//! The end-to-end synthesis flow (§3's "main steps in logic synthesis",
//! §2.1's property checks, and the Fig. 9 decomposition-with-repair loop).

use std::fmt;

use stg::properties::{check_implementability, ImplementabilityReport};
use stg::{StateGraph, Stg};
use synth::complex_gate::{synthesize_complex_gates, ComplexGateCircuit};
use synth::csc::resolve_by_concurrency_reduction;
use synth::decompose::{decompose, resubstitute, DecomposedCircuit};
use synth::latch_arch::{synthesize_latch_circuit, LatchCircuit, LatchStyle};
use synth::library::{map_to_library, Library, Mapping};
use synth::NetId;
use verify::{verify_circuit, VerificationReport};

/// Target implementation architecture (§3.2 / Fig. 8 / Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Architecture {
    /// One atomic complex gate per signal (§3.2).
    #[default]
    ComplexGate,
    /// Set/reset networks + Muller C-element (Fig. 8a).
    CElement,
    /// Set/reset networks + reset-dominant RS latch (Fig. 8b).
    RsLatch,
    /// Fan-in-bounded decomposition with hazard repair (Fig. 9).
    Decomposed,
}

/// How CSC conflicts are resolved when the input specification has them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CscStrategy {
    /// Try state-signal insertion first, fall back to concurrency
    /// reduction (§2.1 lists both methods).
    #[default]
    Auto,
    /// Only state-signal insertion (Fig. 7).
    SignalInsertion,
    /// Only concurrency reduction.
    ConcurrencyReduction,
    /// Fail if CSC does not hold.
    Fail,
}

/// Flow options.
#[derive(Debug, Clone, Default)]
pub struct FlowOptions {
    /// Target architecture.
    pub architecture: Architecture,
    /// CSC resolution strategy.
    pub csc: CscStrategy,
    /// Fan-in bound for [`Architecture::Decomposed`] (default 2, the
    /// two-input library of Fig. 9).
    pub max_fanin: Option<usize>,
    /// Skip the final speed-independence verification (it is exhaustive).
    pub skip_verification: bool,
}

/// Errors the flow can report.
#[derive(Debug)]
pub enum FlowError {
    /// The specification failed a §2.1 implementability property that no
    /// automatic transformation fixes (unbounded, inconsistent,
    /// non-persistent, deadlocking).
    NotImplementable(Box<ImplementabilityReport>),
    /// CSC resolution failed under the requested strategy.
    CscUnresolved,
    /// Synthesis failed (should not happen after CSC resolution; carries
    /// the underlying message).
    Synthesis(String),
    /// The synthesised circuit failed verification.
    VerificationFailed(Box<VerificationReport>),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::NotImplementable(r) => write!(f, "specification not implementable:\n{r}"),
            FlowError::CscUnresolved => write!(f, "could not resolve CSC conflicts"),
            FlowError::Synthesis(m) => write!(f, "synthesis failed: {m}"),
            FlowError::VerificationFailed(r) => {
                write!(f, "verification failed: {}", r.summary())
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// The circuit produced by the flow, by architecture.
#[derive(Debug, Clone)]
pub enum FlowCircuit {
    /// Complex-gate implementation.
    Complex(ComplexGateCircuit),
    /// Latch-based implementation.
    Latch(LatchCircuit),
    /// Decomposed implementation.
    Decomposed(DecomposedCircuit),
}

impl FlowCircuit {
    /// The netlist of whichever architecture was produced.
    #[must_use]
    pub fn netlist(&self) -> &synth::Netlist {
        match self {
            FlowCircuit::Complex(c) => c.netlist(),
            FlowCircuit::Latch(c) => c.netlist(),
            FlowCircuit::Decomposed(c) => c.netlist(),
        }
    }

    /// Net of each STG signal, in signal order.
    #[must_use]
    pub fn signal_nets(&self, spec: &Stg) -> Vec<NetId> {
        match self {
            FlowCircuit::Complex(c) => spec.signals().map(|s| c.signal_net(s)).collect(),
            FlowCircuit::Latch(c) => spec.signals().map(|s| c.signal_net(s)).collect(),
            FlowCircuit::Decomposed(c) => spec.signals().map(|s| c.signal_net(s)).collect(),
        }
    }
}

/// Everything the flow produces.
#[derive(Debug)]
pub struct FlowResult {
    /// The (possibly CSC-transformed) specification actually synthesised.
    pub spec: Stg,
    /// Its state graph.
    pub state_graph: StateGraph,
    /// Description of the CSC transformation, if one was applied.
    pub csc_transformation: Option<String>,
    /// The implementability report of the *final* specification.
    pub report: ImplementabilityReport,
    /// The synthesised circuit.
    pub circuit: FlowCircuit,
    /// Pretty-printed logic equations (complex-gate view of the spec).
    pub equations_text: String,
    /// Library mapping of the final netlist (standard library).
    pub mapping: Option<Mapping>,
    /// `true` if verification ran and passed.
    pub verified: bool,
    /// The verification report, when verification ran.
    pub verification: Option<VerificationReport>,
}

/// Runs the full flow on a specification.
///
/// # Errors
///
/// See [`FlowError`]. Notably, specifications whose only defect is CSC are
/// repaired automatically under the default options.
pub fn run_flow(spec: &Stg, options: &FlowOptions) -> Result<FlowResult, FlowError> {
    // 1. Properties (§2.1).
    let initial_report = check_implementability(spec);
    if !initial_report.bounded
        || !initial_report.consistent
        || !initial_report.persistent
        || !initial_report.deadlock_free
    {
        return Err(FlowError::NotImplementable(Box::new(initial_report)));
    }

    // 2. CSC resolution (§3.1). Several resolutions can be acceptable at
    // the specification level (e.g. a state signal and its complement);
    // the flow tries them best-first and keeps the first one whose
    // synthesised circuit verifies in the target architecture.
    let candidates: Vec<(Stg, Option<String>)> = if initial_report.complete_state_coding {
        vec![(spec.clone(), None)]
    } else {
        let mut list: Vec<(Stg, Option<String>)> = Vec::new();
        let push_insertions = |list: &mut Vec<(Stg, Option<String>)>| {
            for r in synth::csc::insertion_candidates(spec).into_iter().take(12) {
                list.push((r.stg, Some(r.description)));
            }
        };
        let push_reduction = |list: &mut Vec<(Stg, Option<String>)>| {
            if let Some(r) = resolve_by_concurrency_reduction(spec) {
                list.push((r.stg, Some(r.description)));
            }
        };
        match options.csc {
            CscStrategy::Fail => {}
            CscStrategy::SignalInsertion => push_insertions(&mut list),
            CscStrategy::ConcurrencyReduction => push_reduction(&mut list),
            CscStrategy::Auto => {
                push_insertions(&mut list);
                push_reduction(&mut list);
                // Mixed fall-back for controllers needing several
                // transformations (e.g. the READ+WRITE spec of Fig. 5
                // takes a reduction plus a state signal).
                if let Some(r) = synth::csc::resolve_mixed(spec, 5) {
                    list.push((r.stg, Some(r.description)));
                }
            }
        }
        if list.is_empty() {
            return Err(FlowError::CscUnresolved);
        }
        list
    };

    let mut last_error = FlowError::CscUnresolved;
    for (spec, csc_transformation) in candidates {
        match synthesize_one(&spec, csc_transformation, options) {
            Ok(result) => return Ok(result),
            Err(e) => last_error = e,
        }
    }
    Err(last_error)
}

/// Synthesises and verifies one concrete (CSC-clean) specification.
fn synthesize_one(
    spec: &Stg,
    csc_transformation: Option<String>,
    options: &FlowOptions,
) -> Result<FlowResult, FlowError> {
    let spec = spec.clone();
    let sg = StateGraph::build(&spec).map_err(|e| FlowError::Synthesis(e.to_string()))?;
    let report = stg::properties::report_from_sg(&spec, &sg);

    // 3. Next-state functions and equations (§3.2).
    let complex = synthesize_complex_gates(&spec, &sg)
        .map_err(|e| FlowError::Synthesis(e.to_string()))?;
    let equations_text = complex.display_equations(&spec);

    // 4. Architecture mapping (§3.4).
    let max_fanin = options.max_fanin.unwrap_or(2);
    let circuit = match options.architecture {
        Architecture::ComplexGate => FlowCircuit::Complex(complex.clone()),
        Architecture::CElement => FlowCircuit::Latch(
            synthesize_latch_circuit(&spec, &sg, LatchStyle::CElement)
                .map_err(|e| FlowError::Synthesis(e.to_string()))?,
        ),
        Architecture::RsLatch => FlowCircuit::Latch(
            synthesize_latch_circuit(&spec, &sg, LatchStyle::RsLatch)
                .map_err(|e| FlowError::Synthesis(e.to_string()))?,
        ),
        Architecture::Decomposed => {
            // Fig. 9: try the naive decomposition; if it is hazardous,
            // repair by resubstitution (multiple acknowledgment).
            let naive = decompose(&spec, &complex, max_fanin);
            let nets: Vec<NetId> = spec.signals().map(|s| naive.signal_net(s)).collect();
            let naive_report = verify_circuit(&spec, &sg, naive.netlist(), &nets);
            if naive_report.is_speed_independent() {
                FlowCircuit::Decomposed(naive)
            } else {
                FlowCircuit::Decomposed(resubstitute(&spec, &sg, &naive))
            }
        }
    };

    // 5. Technology-library sanity (standard library; the two-input
    // library only fits decomposed netlists).
    let library = match options.architecture {
        Architecture::Decomposed => Library::two_input(),
        _ => Library::standard(),
    };
    let mapping = map_to_library(circuit.netlist(), &library).ok();

    // 6. Verification (§2.1 "implementation verification"). Latch
    // architectures are certified via their atomic equivalent plus the
    // monotonous-cover condition (§3.4); gate-level netlists go through
    // the strict Muller-model checker directly.
    let (verified, verification) = if options.skip_verification {
        (false, None)
    } else {
        let v = match &circuit {
            FlowCircuit::Latch(latch) => {
                let violations =
                    synth::latch_arch::monotonic_violations(&spec, &sg, &latch.covers);
                if !violations.is_empty() {
                    return Err(FlowError::Synthesis(format!(
                        "{} monotonous-cover violation(s) in the latch networks",
                        violations.len()
                    )));
                }
                let (atomic, nets) = latch.atomic_netlist(&spec);
                verify_circuit(&spec, &sg, &atomic, &nets)
            }
            _ => {
                let nets = circuit.signal_nets(&spec);
                verify_circuit(&spec, &sg, circuit.netlist(), &nets)
            }
        };
        if !v.is_speed_independent() {
            return Err(FlowError::VerificationFailed(Box::new(v)));
        }
        (true, Some(v))
    };

    Ok(FlowResult {
        spec,
        state_graph: sg,
        csc_transformation,
        report,
        circuit,
        equations_text,
        mapping,
        verified,
        verification,
    })
}
