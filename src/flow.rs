//! The legacy one-shot flow API, kept as a thin shim over the staged
//! [`crate::pipeline`].
//!
//! New code should use [`crate::Synthesis`]: it exposes every
//! intermediate stage (implementability report, CSC candidates,
//! equations, netlist, verification), supports the symbolic state-space
//! backend, emits structured [`crate::FlowEvent`] diagnostics and batches
//! via [`crate::run_batch`]. This module only adapts the old types.

use stg::StateGraph;

use crate::pipeline::{Synthesis, SynthesisOptions, Verification};

pub use crate::pipeline::Circuit as FlowCircuit;
pub use crate::pipeline::{Architecture, CscStrategy, PipelineError as FlowError};

use stg::properties::ImplementabilityReport;
use synth::library::Mapping;
use verify::VerificationReport;

/// Flow options (legacy shape; superseded by
/// [`crate::SynthesisOptions`], which adds backend selection).
#[derive(Debug, Clone, Default)]
pub struct FlowOptions {
    /// Target architecture.
    pub architecture: Architecture,
    /// CSC resolution strategy.
    pub csc: CscStrategy,
    /// Fan-in bound for [`Architecture::Decomposed`] (default 2, the
    /// two-input library of Fig. 9).
    pub max_fanin: Option<usize>,
    /// Skip the final speed-independence verification (it is exhaustive).
    pub skip_verification: bool,
}

/// Everything the flow produces (legacy shape; superseded by
/// [`crate::Verified`], whose `verification` field distinguishes
/// "skipped" from "failed").
#[derive(Debug)]
pub struct FlowResult {
    /// The (possibly CSC-transformed) specification actually synthesised.
    pub spec: Stg,
    /// Its state graph.
    pub state_graph: StateGraph,
    /// Description of the CSC transformation, if one was applied.
    pub csc_transformation: Option<String>,
    /// The implementability report of the *final* specification.
    pub report: ImplementabilityReport,
    /// The synthesised circuit.
    pub circuit: FlowCircuit,
    /// Pretty-printed logic equations (complex-gate view of the spec).
    pub equations_text: String,
    /// Library mapping of the final netlist (standard library).
    pub mapping: Option<Mapping>,
    /// `true` if verification ran and passed. **Ambiguous by design
    /// legacy**: `false` covers both "skipped" and "not run"; use the
    /// staged API's [`crate::Verification`] to distinguish.
    pub verified: bool,
    /// The verification report, when verification ran.
    pub verification: Option<VerificationReport>,
}

use stg::Stg;

/// Runs the full flow on a specification (legacy entry point).
///
/// # Errors
///
/// See [`FlowError`]. Notably, specifications whose only defect is CSC
/// are repaired automatically under the default options.
#[deprecated(
    since = "0.2.0",
    note = "use the staged `asyncsynth::Synthesis` pipeline (`Synthesis::new(spec).run()`)"
)]
pub fn run_flow(spec: &Stg, options: &FlowOptions) -> Result<FlowResult, FlowError> {
    let result = Synthesis::with_options(
        spec.clone(),
        SynthesisOptions {
            backend: stg::Backend::Explicit,
            architecture: options.architecture,
            csc: options.csc,
            sweep: Default::default(),
            max_fanin: options.max_fanin,
            skip_verification: options.skip_verification,
            verify: Default::default(),
        },
    )
    .run()?;
    let state_graph = StateGraph::from_space(result.state_space());
    let (verified, verification) = match result.verification {
        Verification::Passed(report) => (true, Some(report)),
        Verification::Skipped | Verification::NotRun => (false, None),
    };
    Ok(FlowResult {
        spec: result.spec,
        state_graph,
        csc_transformation: result.transformation.map(|t| t.description),
        report: result.report,
        circuit: result.circuit,
        equations_text: result.equations_text,
        mapping: result.mapping,
        verified,
        verification,
    })
}
