//! The serialisable result of a synthesis run.
//!
//! A [`Verified`] stage artifact owns live objects (a boxed state space,
//! netlists, covers) that make sense in-process but not on a wire or on
//! disk. [`SynthesisSummary`] is its stable, self-contained projection:
//! everything a client of the synthesis service — or a warm cache hit —
//! needs to report a result, with a deterministic JSON encoding
//! (`from_json(to_json(s)) == s`, byte-identical re-rendering).

use crate::json::Json;
use crate::pipeline::{flow_metrics, SynthesisOptions, Verification, Verified};
use telemetry::Counters;

/// A CSC transformation, in serialisable form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CscSummary {
    /// The method used (`signal insertion`, `concurrency reduction`, `mixed`).
    pub kind: String,
    /// Which transitions were split / ordered.
    pub description: String,
    /// State count of the transformed specification.
    pub num_states: usize,
}

/// The flow's complete, serialisable outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisSummary {
    /// Model name of the specification actually synthesised.
    pub model: String,
    /// State-space backend used.
    pub backend: String,
    /// Target architecture.
    pub architecture: String,
    /// Number of states of the final specification.
    pub num_states: usize,
    /// The applied CSC transformation, if any.
    pub transformation: Option<CscSummary>,
    /// Pretty-printed logic equations.
    pub equations: String,
    /// The netlist, in `describe()` text form.
    pub netlist: String,
    /// Gate count of the netlist.
    pub num_gates: usize,
    /// Library-mapping cell count, when the netlist fits the library.
    pub mapping_cells: Option<usize>,
    /// Library-mapping area estimate.
    pub mapping_area: Option<usize>,
    /// Verification outcome: `passed`, `skipped` or `not_run`.
    pub verification: String,
    /// Composed states explored by the verifier, when it ran.
    pub composed_states: Option<usize>,
    /// Deterministic operation counters derived from the event log
    /// (see [`flow_metrics`]): thread-count-invariant, drift-gated by
    /// the corpus ledger. Advisory counters (BDD nodes, memo hits)
    /// deliberately never appear here — summaries are byte-identical
    /// across verify strategies and shared across cache keys, which
    /// only the deterministic set preserves.
    pub metrics: Counters,
    /// The flow's diagnostic event log, rendered.
    pub events: Vec<String>,
}

impl SynthesisSummary {
    /// Projects a [`Verified`] artifact (plus the options that produced
    /// it) onto the serialisable summary.
    #[must_use]
    pub fn from_verified(v: &Verified, options: &SynthesisOptions) -> Self {
        let (verification, composed_states) = match &v.verification {
            Verification::Passed(r) => ("passed".to_owned(), Some(r.states_explored)),
            Verification::Skipped => ("skipped".to_owned(), None),
            Verification::NotRun => ("not_run".to_owned(), None),
        };
        SynthesisSummary {
            model: v.spec.name().to_owned(),
            backend: options.backend.name().to_owned(),
            architecture: options.architecture.name().to_owned(),
            num_states: v.num_states(),
            transformation: v.transformation.as_ref().map(|t| CscSummary {
                kind: t.kind.to_string(),
                description: t.description.clone(),
                num_states: t.num_states,
            }),
            equations: v.equations_text.clone(),
            netlist: v.circuit.netlist().describe(),
            num_gates: v.circuit.netlist().num_gates(),
            mapping_cells: v.mapping.as_ref().map(synth::library::Mapping::num_cells),
            mapping_area: v.mapping.as_ref().map(synth::library::Mapping::area),
            verification,
            composed_states,
            metrics: flow_metrics(v.events()),
            events: v.events().iter().map(ToString::to_string).collect(),
        }
    }

    /// Encodes the summary as a JSON value.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let opt_num = |n: Option<usize>| n.map_or(Json::Null, Json::num);
        Json::obj(vec![
            ("model", Json::str(&self.model)),
            ("backend", Json::str(&self.backend)),
            ("architecture", Json::str(&self.architecture)),
            ("states", Json::num(self.num_states)),
            (
                "csc",
                self.transformation.as_ref().map_or(Json::Null, |t| {
                    Json::obj(vec![
                        ("kind", Json::str(&t.kind)),
                        ("description", Json::str(&t.description)),
                        ("states", Json::num(t.num_states)),
                    ])
                }),
            ),
            ("equations", Json::str(&self.equations)),
            ("netlist", Json::str(&self.netlist)),
            ("gates", Json::num(self.num_gates)),
            ("mapping_cells", opt_num(self.mapping_cells)),
            ("mapping_area", opt_num(self.mapping_area)),
            ("verification", Json::str(&self.verification)),
            ("composed_states", opt_num(self.composed_states)),
            ("metrics", counters_to_json(&self.metrics)),
            (
                "events",
                Json::Arr(self.events.iter().map(Json::str).collect()),
            ),
        ])
    }

    /// Decodes a summary from the JSON produced by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// A description of the first missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(ToOwned::to_owned)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let num_field = |key: &str| -> Result<usize, String> {
            v.get(key)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let opt_num_field = |key: &str| v.get(key).and_then(Json::as_usize);
        let transformation = match v.get("csc") {
            None | Some(Json::Null) => None,
            Some(t) => Some(CscSummary {
                kind: t
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or("missing csc.kind")?
                    .to_owned(),
                description: t
                    .get("description")
                    .and_then(Json::as_str)
                    .ok_or("missing csc.description")?
                    .to_owned(),
                num_states: t
                    .get("states")
                    .and_then(Json::as_usize)
                    .ok_or("missing csc.states")?,
            }),
        };
        let events = v
            .get("events")
            .and_then(Json::as_arr)
            .ok_or("missing events array")?
            .iter()
            .map(|e| {
                e.as_str()
                    .map(ToOwned::to_owned)
                    .ok_or_else(|| "non-string event".to_owned())
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SynthesisSummary {
            model: str_field("model")?,
            backend: str_field("backend")?,
            architecture: str_field("architecture")?,
            num_states: num_field("states")?,
            transformation,
            equations: str_field("equations")?,
            netlist: str_field("netlist")?,
            num_gates: num_field("gates")?,
            mapping_cells: opt_num_field("mapping_cells"),
            mapping_area: opt_num_field("mapping_area"),
            verification: str_field("verification")?,
            composed_states: opt_num_field("composed_states"),
            metrics: counters_from_json(v.get("metrics").ok_or("missing metrics object")?)?,
            events,
        })
    }
}

/// Encodes a [`Counters`] map as a JSON object (keys already sorted, so
/// the rendering is byte-stable).
#[must_use]
pub fn counters_to_json(counters: &Counters) -> Json {
    Json::Obj(
        counters
            .iter()
            .map(|(name, value)| {
                let value = usize::try_from(value).unwrap_or(usize::MAX);
                (name.to_owned(), Json::num(value))
            })
            .collect(),
    )
}

/// Decodes a [`Counters`] map from a JSON object of numbers.
///
/// # Errors
///
/// A description of the first non-numeric entry (or a non-object value).
pub fn counters_from_json(v: &Json) -> Result<Counters, String> {
    let Json::Obj(pairs) = v else {
        return Err("metrics is not an object".to_owned());
    };
    let mut counters = Counters::new();
    for (name, value) in pairs {
        let value = value
            .as_u64()
            .ok_or_else(|| format!("non-numeric metric {name:?}"))?;
        counters.set(name, value);
    }
    Ok(counters)
}

/// Encodes a §2.1 implementability report as JSON (the `check`
/// operation's payload, also cached under [`crate::pipeline::CacheStage::Check`]).
#[must_use]
pub fn report_to_json(report: &stg::properties::ImplementabilityReport) -> Json {
    Json::obj(vec![
        ("bounded", Json::Bool(report.bounded)),
        ("consistent", Json::Bool(report.consistent)),
        ("states", Json::num(report.num_states)),
        (
            "unique_state_coding",
            Json::Bool(report.unique_state_coding),
        ),
        (
            "complete_state_coding",
            Json::Bool(report.complete_state_coding),
        ),
        ("csc_conflict_pairs", Json::num(report.csc_conflict_pairs)),
        ("persistent", Json::Bool(report.persistent)),
        (
            "persistency_violations",
            Json::num(report.persistency_violations),
        ),
        ("deadlock_free", Json::Bool(report.deadlock_free)),
        ("implementable", Json::Bool(report.is_implementable())),
        (
            "error",
            report
                .error
                .as_ref()
                .map_or(Json::Null, |e| Json::str(e.to_string())),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::SynthesisSummary;
    use crate::json::Json;
    use crate::pipeline::{Synthesis, SynthesisOptions};

    #[test]
    fn summary_json_round_trips() {
        let options = SynthesisOptions::default();
        let verified = Synthesis::with_options(stg::examples::vme_read(), options.clone())
            .run()
            .expect("vme read synthesises");
        let summary = SynthesisSummary::from_verified(&verified, &options);
        assert_eq!(summary.verification, "passed");
        assert!(summary.transformation.is_some(), "Fig. 3 needs CSC repair");
        let text = summary.to_json().render();
        let back =
            SynthesisSummary::from_json(&Json::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(back, summary);
        assert_eq!(back.to_json().render(), text, "byte-stable re-rendering");
    }
}
