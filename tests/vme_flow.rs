//! End-to-end integration tests on the paper's running example: the
//! staged pipeline reproduces Figs. 3–9 of the DAC'98 tutorial.

use asyncsynth::{
    run_batch, Architecture, Backend, CscStrategy, FlowEvent, Synthesis, SynthesisOptions,
    Verification,
};
use stg::examples::{vme_read, vme_read_csc, vme_read_write};
use stg::StateGraph;

#[test]
fn pipeline_resolves_csc_and_verifies_complex_gates() {
    let result = Synthesis::new(vme_read()).run().expect("pipeline succeeds");
    assert!(result.verification.passed());
    assert!(result.transformation.is_some(), "Fig. 3 needs a csc signal");
    assert_eq!(result.num_states(), 16, "Fig. 7's SG");
    assert!(result.report.is_implementable());
    // §3.2 equations, up to the inserted signal's name and polarity.
    assert!(result.equations_text.contains("DTACK = D"));
    assert!(result.equations_text.contains("LDS = D + csc0"));
    assert!(result.equations_text.contains("D = LDTACK csc0"));
}

#[test]
fn staged_api_exposes_intermediate_artifacts() {
    let checked = Synthesis::new(vme_read()).check().expect("properties hold");
    assert_eq!(checked.state_space().num_states(), 14, "Fig. 4's SG");
    assert!(!checked.report().complete_state_coding, "Fig. 3 lacks CSC");
    assert_eq!(checked.report().csc_conflict_pairs, 1);

    let resolved = checked.resolve_csc().expect("candidates exist");
    assert!(
        resolved.candidates().len() > 1,
        "several acceptable insertions (signal and complement)"
    );
    assert!(resolved
        .candidates()
        .iter()
        .all(|c| c.transformation.is_some()));

    let synthesized = resolved.synthesize().expect("synthesis succeeds");
    assert!(synthesized.equations_text().contains("DTACK = D"));
    assert!(synthesized.mapping().is_some());

    let verified = synthesized.verify().expect("verification passes");
    assert!(verified.verification.passed());
    // The event log covers every stage.
    let events = verified.events();
    assert!(events
        .iter()
        .any(|e| matches!(e, FlowEvent::PropertiesChecked { .. })));
    assert!(events.iter().any(|e| matches!(e, FlowEvent::CscApplied(_))));
    assert!(events
        .iter()
        .any(|e| matches!(e, FlowEvent::VerificationPassed { .. })));
}

#[test]
fn pipeline_all_architectures_verify() {
    for arch in [
        Architecture::ComplexGate,
        Architecture::CElement,
        Architecture::RsLatch,
        Architecture::Decomposed,
    ] {
        let result = Synthesis::new(vme_read())
            .architecture(arch)
            .run()
            .unwrap_or_else(|e| panic!("{arch:?} failed: {e}"));
        assert!(result.verification.passed(), "{arch:?} not verified");
        if arch == Architecture::Decomposed {
            assert!(result.circuit.netlist().max_fanin() <= 2, "{arch:?} fan-in");
        }
    }
}

#[test]
fn pipeline_with_concurrency_reduction_strategy() {
    let result = Synthesis::new(vme_read())
        .csc(CscStrategy::ConcurrencyReduction)
        .run()
        .expect("reduction works for the READ cycle");
    assert!(result.verification.passed());
    // Concurrency reduction removes states rather than adding a signal.
    assert!(result.num_states() < 14);
    assert_eq!(result.spec.num_signals(), 5, "no new signal added");
}

#[test]
fn pipeline_fail_strategy_errors_on_csc_conflict() {
    assert!(Synthesis::new(vme_read())
        .csc(CscStrategy::Fail)
        .run()
        .is_err());
}

#[test]
fn pipeline_on_already_clean_spec_is_direct() {
    let result = Synthesis::new(vme_read_csc()).run().expect("clean spec");
    assert!(result.transformation.is_none());
    assert!(result.verification.passed());
}

#[test]
fn skipped_verification_is_distinguishable_from_failed() {
    let result = Synthesis::new(vme_read_csc())
        .skip_verification(true)
        .run()
        .expect("clean spec");
    assert!(matches!(result.verification, Verification::Skipped));
    assert!(!result.verification.passed());
    assert!(result.verification.report().is_none());
    assert!(result
        .events()
        .iter()
        .any(|e| matches!(e, FlowEvent::VerificationSkipped)));
}

#[test]
fn read_write_controller_pipeline() {
    // The full Fig. 5 controller: bigger state space, input choice, CSC
    // conflicts resolved automatically.
    let result = Synthesis::new(vme_read_write()).run();
    match result {
        Ok(r) => {
            assert!(r.verification.passed());
            assert!(r.report.complete_state_coding);
        }
        Err(e) => panic!("read+write flow failed: {e}"),
    }
}

#[test]
fn mapping_reported_for_standard_library() {
    let result = Synthesis::new(vme_read()).run().unwrap();
    let mapping = result
        .mapping
        .expect("complex gates fit the standard library");
    assert_eq!(mapping.num_cells(), result.circuit.netlist().num_gates());
}

#[test]
fn run_batch_synthesizes_many_specs_concurrently() {
    let specs = [vme_read(), vme_read_csc(), vme_read_write(), vme_read()];
    let results = run_batch(&specs, &SynthesisOptions::default());
    assert_eq!(results.len(), specs.len(), "one result per spec, in order");
    for (spec, result) in specs.iter().zip(&results) {
        let r = result
            .as_ref()
            .unwrap_or_else(|e| panic!("{} failed: {e}", spec.name()));
        assert!(r.verification.passed(), "{} not verified", spec.name());
    }
    // Identical specs give identical artifacts regardless of scheduling.
    assert_eq!(
        results[0].as_ref().unwrap().equations_text,
        results[3].as_ref().unwrap().equations_text
    );
}

#[test]
fn run_batch_reports_per_spec_failures() {
    // An unresolvable request (CSC conflict + Fail strategy) fails its
    // slot without poisoning the rest of the batch.
    let specs = [vme_read(), vme_read_csc()];
    let options = SynthesisOptions {
        csc: CscStrategy::Fail,
        ..SynthesisOptions::default()
    };
    let results = run_batch(&specs, &options);
    assert!(results[0].is_err(), "Fig. 3 has a CSC conflict");
    assert!(results[1].is_ok(), "Fig. 7 is clean");
}

#[test]
#[allow(deprecated)]
fn legacy_run_flow_shim_matches_pipeline() {
    use asyncsynth::flow::{run_flow, FlowOptions};
    let legacy = run_flow(&vme_read(), &FlowOptions::default()).expect("shim works");
    assert!(legacy.verified);
    assert!(legacy.csc_transformation.is_some());
    assert_eq!(legacy.state_graph.num_states(), 16);
    let new = Synthesis::new(vme_read()).run().unwrap();
    assert_eq!(legacy.equations_text, new.equations_text);
}

#[test]
fn state_graph_codes_match_paper_initial_state() {
    let spec = vme_read();
    let sg = StateGraph::build(&spec).unwrap();
    // <DSr, DTACK, LDTACK, LDS, D> = 00000 with DSr excited.
    assert_eq!(sg.plain_code_string(0), "00000");
}

#[test]
fn backend_is_threaded_through_every_stage() {
    let result = Synthesis::new(vme_read())
        .backend(Backend::Symbolic)
        .run()
        .expect("symbolic pipeline succeeds");
    assert!(result.verification.passed());
    assert_eq!(result.state_space().backend(), Backend::Symbolic);
    assert!(result.events().iter().all(|e| {
        if let FlowEvent::StateSpaceBuilt { backend, .. } = e {
            *backend == Backend::Symbolic
        } else {
            true
        }
    }));
}
