//! End-to-end integration tests on the paper's running example: the flow
//! reproduces Figs. 3–9 of the DAC'98 tutorial.

use asyncsynth::flow::{run_flow, Architecture, CscStrategy, FlowOptions};
use stg::examples::{vme_read, vme_read_csc, vme_read_write};
use stg::StateGraph;

#[test]
fn flow_resolves_csc_and_verifies_complex_gates() {
    let result = run_flow(&vme_read(), &FlowOptions::default()).expect("flow succeeds");
    assert!(result.verified);
    assert!(result.csc_transformation.is_some(), "Fig. 3 needs a csc signal");
    assert_eq!(result.state_graph.num_states(), 16, "Fig. 7's SG");
    assert!(result.report.is_implementable());
    // §3.2 equations, up to the inserted signal's name.
    assert!(result.equations_text.contains("DTACK = D"));
    assert!(result.equations_text.contains("LDS = D + csc0"));
    assert!(result.equations_text.contains("D = LDTACK csc0"));
}

#[test]
fn flow_all_architectures_verify() {
    for arch in [
        Architecture::ComplexGate,
        Architecture::CElement,
        Architecture::RsLatch,
        Architecture::Decomposed,
    ] {
        let options = FlowOptions { architecture: arch, ..FlowOptions::default() };
        let result = run_flow(&vme_read(), &options)
            .unwrap_or_else(|e| panic!("{arch:?} failed: {e}"));
        assert!(result.verified, "{arch:?} not verified");
        if arch == Architecture::Decomposed {
            assert!(result.circuit.netlist().max_fanin() <= 2, "{arch:?} fan-in");
        }
    }
}

#[test]
fn flow_with_concurrency_reduction_strategy() {
    let options = FlowOptions {
        csc: CscStrategy::ConcurrencyReduction,
        ..FlowOptions::default()
    };
    let result = run_flow(&vme_read(), &options).expect("reduction works for the READ cycle");
    assert!(result.verified);
    // Concurrency reduction removes states rather than adding a signal.
    assert!(result.state_graph.num_states() < 14);
    assert_eq!(result.spec.num_signals(), 5, "no new signal added");
}

#[test]
fn flow_fail_strategy_errors_on_csc_conflict() {
    let options = FlowOptions { csc: CscStrategy::Fail, ..FlowOptions::default() };
    assert!(run_flow(&vme_read(), &options).is_err());
}

#[test]
fn flow_on_already_clean_spec_is_direct() {
    let result = run_flow(&vme_read_csc(), &FlowOptions::default()).expect("clean spec");
    assert!(result.csc_transformation.is_none());
    assert!(result.verified);
}

#[test]
fn read_write_controller_flow() {
    // The full Fig. 5 controller: bigger state space, input choice, CSC
    // conflicts resolved automatically.
    let spec = vme_read_write();
    let result = run_flow(&spec, &FlowOptions::default());
    match result {
        Ok(r) => {
            assert!(r.verified);
            assert!(r.report.complete_state_coding);
        }
        Err(e) => panic!("read+write flow failed: {e}"),
    }
}

#[test]
fn mapping_reported_for_standard_library() {
    let result = run_flow(&vme_read(), &FlowOptions::default()).unwrap();
    let mapping = result.mapping.expect("complex gates fit the standard library");
    assert_eq!(mapping.num_cells(), result.circuit.netlist().num_gates());
}

#[test]
fn state_graph_codes_match_paper_initial_state() {
    let spec = vme_read();
    let sg = StateGraph::build(&spec).unwrap();
    // <DSr, DTACK, LDTACK, LDS, D> = 00000 with DSr excited.
    assert_eq!(sg.plain_code_string(0), "00000");
}
