//! Cross-crate property tests: the whole pipeline holds its invariants on
//! randomly generated specifications.

use proptest::prelude::*;
use stg::{SignalEdge, SignalKind, StateGraph, Stg, StgBuilder};

/// Builds a random "handshake chain" STG: `k` signals, each responding to
/// the previous one, closed into a consistent cycle. Always a live, safe
/// marked graph; input/output roles vary with the seed.
fn handshake_chain(k: usize, roles: &[bool]) -> Stg {
    let mut b = StgBuilder::new("chain");
    let sigs: Vec<_> = (0..k)
        .map(|i| {
            let kind = if roles[i % roles.len()] {
                SignalKind::Input
            } else {
                SignalKind::Output
            };
            b.add_signal(format!("s{i}"), kind)
        })
        .collect();
    let rises: Vec<_> = sigs
        .iter()
        .map(|&s| b.add_edge(s, SignalEdge::Rise))
        .collect();
    let falls: Vec<_> = sigs
        .iter()
        .map(|&s| b.add_edge(s, SignalEdge::Fall))
        .collect();
    // s0+ -> s1+ -> ... -> sk-1+ -> s0- -> s1- -> ... -> sk-1- -> s0+
    for i in 0..k - 1 {
        b.connect(rises[i], rises[i + 1]);
        b.connect(falls[i], falls[i + 1]);
    }
    b.connect(rises[k - 1], falls[0]);
    let p = b.connect(falls[k - 1], rises[0]);
    b.mark_place(p, 1);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn chains_are_consistent_and_synthesisable(
        k in 2usize..6,
        roles in proptest::collection::vec(any::<bool>(), 1..4),
    ) {
        // Ensure at least one output exists, else there is nothing to do.
        let mut roles = roles;
        roles.push(false);
        let spec = handshake_chain(k, &roles);
        let sg = StateGraph::build(&spec).unwrap();
        // A sequential cycle over 2k edges has exactly 2k states.
        prop_assert_eq!(sg.num_states(), 2 * k);
        let report = stg::properties::check_implementability(&spec);
        prop_assert!(report.bounded && report.consistent);
        if report.is_implementable() {
            let circuit = synth::complex_gate::synthesize_complex_gates(&spec, &sg).unwrap();
            let nets: Vec<synth::NetId> =
                spec.signals().map(|s| circuit.signal_net(s)).collect();
            let v = verify::verify_circuit(&spec, &sg, circuit.netlist(), &nets);
            prop_assert!(v.is_speed_independent(), "{}", v.summary());
        }
    }

    #[test]
    fn g_format_roundtrip_preserves_behaviour(
        k in 2usize..6,
        roles in proptest::collection::vec(any::<bool>(), 1..4),
    ) {
        let spec = handshake_chain(k, &roles);
        let text = stg::parse::write_g(&spec);
        let parsed = stg::parse::parse_g(&text).unwrap();
        let sg1 = StateGraph::build(&spec).unwrap();
        let sg2 = StateGraph::build(&parsed).unwrap();
        prop_assert_eq!(sg1.num_states(), sg2.num_states());
        let t1 = sg1.ts().map_labels(|&t| spec.label_string(t));
        let t2 = sg2.ts().map_labels(|&t| parsed.label_string(t));
        prop_assert!(t1.trace_equivalent(&t2));
    }

    #[test]
    fn regions_roundtrip_on_chains(k in 2usize..5) {
        let spec = handshake_chain(k, &[false]);
        let sg = StateGraph::build(&spec).unwrap();
        let ts = sg.ts().map_labels(|&t| spec.label_string(t));
        let extracted = regions::synthesize_net(&ts).unwrap();
        prop_assert!(extracted.trace_equivalent);
    }

    #[test]
    fn simulation_of_synthesised_chains_never_glitches(
        k in 2usize..5,
        seed in 0u64..50,
    ) {
        let spec = handshake_chain(k, &[true, false]);
        let sg = StateGraph::build(&spec).unwrap();
        let report = stg::properties::check_implementability(&spec);
        prop_assume!(report.is_implementable());
        let circuit = synth::complex_gate::synthesize_complex_gates(&spec, &sg).unwrap();
        let nets: Vec<synth::NetId> = spec.signals().map(|s| circuit.signal_net(s)).collect();
        let config = sim::SimConfig { seed, ..sim::SimConfig::default() };
        let mut simulator =
            sim::Simulator::new(&spec, &sg, circuit.netlist().clone(), nets, config);
        let stats = simulator.run(2_000.0);
        prop_assert_eq!(stats.glitches, 0);
    }
}
