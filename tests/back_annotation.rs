//! §4 integration: state graph → regions → Petri net → state graph
//! round-trips preserve behaviour (Fig. 10).

use petri::reach::ReachabilityGraph;
use regions::synthesize_net;
use stg::examples::{toggle, vme_read, vme_read_csc};
use stg::StateGraph;

fn roundtrip(spec: &stg::Stg) {
    let sg = StateGraph::build(spec).unwrap();
    let ts = sg.ts().map_labels(|&t| spec.label_string(t));
    let extracted = synthesize_net(&ts).expect("region synthesis succeeds");
    assert!(
        extracted.trace_equivalent,
        "extracted net must regenerate the language of {}",
        spec.name()
    );
    // And explicitly: the reachability graph of the extracted net is trace
    // equivalent to the state graph.
    let rg = ReachabilityGraph::build(&extracted.net).unwrap();
    let net_ts = rg
        .ts()
        .map_labels(|&t| extracted.net.transition_name(t).to_owned());
    assert!(net_ts.trace_equivalent(&ts));
}

#[test]
fn toggle_roundtrip() {
    roundtrip(&toggle());
}

#[test]
fn vme_read_roundtrip() {
    roundtrip(&vme_read());
}

#[test]
fn vme_read_csc_roundtrip() {
    // Fig. 10's actual subject: the behaviour including the inserted
    // state signal.
    roundtrip(&vme_read_csc());
}

#[test]
fn extraction_yields_safe_live_net() {
    let spec = vme_read();
    let sg = StateGraph::build(&spec).unwrap();
    let ts = sg.ts().map_labels(|&t| spec.label_string(t));
    let extracted = synthesize_net(&ts).unwrap();
    let rg = ReachabilityGraph::build(&extracted.net).unwrap();
    assert!(rg.deadlocks().is_empty());
    assert!(rg.all_transitions_fire(&extracted.net));
}
