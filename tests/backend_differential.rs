//! The differential property-test harness: random safe STGs are run
//! through all three state-space backends — explicit breadth-first
//! ([`stg::StateGraph`]), decoding symbolic ([`stg::SymbolicStateSpace`])
//! and resident-BDD ([`stg::SymbolicSetSpace`]) — and every observable
//! artifact is required to agree: state counts, code sets, region
//! partitions, USC/CSC verdicts and conflict-pair counts, persistency,
//! deadlock-freedom, and the final next-state equations. Error paths are
//! differential too: bound-exceeded, unsafe-net and inconsistency
//! failures must produce the same `StgError` variants symbolically as
//! explicitly.
//!
//! The case count honours `PROPTEST_CASES` (default 32 — the CI
//! `backend-differential` job raises it); generation is deterministic
//! per test, so failures reproduce without a persistence file.

use proptest::prelude::*;
use stg::{
    Backend, SignalEdge, SignalKind, StateSpace, Stg, StgBuilder, StgError, SymbolicSetSpace,
};

use corpus::generators;

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

const BACKENDS: [Backend; 3] = [Backend::Explicit, Backend::Symbolic, Backend::SymbolicSet];

// ---------------------------------------------------------------------
// Spec generators — the corpus families (`crates/corpus`), which
// superseded this file's original three hand-rolled builders
// ---------------------------------------------------------------------

/// The combinatorial scale family: the signal-labelled token ring
/// (`C(2·half, k)` states on a linear net).
fn token_ring(half: usize, k: usize) -> Stg {
    stg::examples::token_ring(half, k)
}

/// One strategy drawing from the corpus: parameterised generator
/// families (chains, dispatchers, rings, arbiters, selector trees,
/// counters, parallelisers) plus the fixed corpus specs by index — so
/// every family the ledger pins is also cross-checked across backends.
fn any_spec() -> impl Strategy<Value = Stg> {
    let fixed = corpus::all_specs();
    let fixed_len = fixed.len();
    prop_oneof![
        (2usize..6, proptest::collection::vec(any::<bool>(), 1..4)).prop_map(|(k, mut roles)| {
            roles.push(false);
            generators::handshake_chain(k, &roles)
        }),
        (1usize..4, any::<bool>()).prop_map(|(b, inputs)| generators::dispatcher(b, inputs)),
        (2usize..5, 1usize..5).prop_map(|(half, k)| token_ring(half, k.min(2 * half))),
        (2usize..5).prop_map(generators::arbiter),
        (1usize..4).prop_map(generators::selector_tree),
        (1usize..5).prop_map(generators::ripple_counter),
        (2usize..5, any::<bool>()).prop_map(|(n, shared)| generators::paralleliser(n, shared)),
        (0..fixed_len).prop_map(move |i| fixed[i].1.clone()),
    ]
}

fn build_all(spec: &Stg) -> Vec<Box<dyn StateSpace>> {
    BACKENDS
        .iter()
        .map(|b| {
            b.build(spec)
                .unwrap_or_else(|e| panic!("{} build failed on {}: {e}", b, spec.name()))
        })
        .collect()
}

/// The sorted distinct code strings of a state set, via the set-level
/// API (exercises `set_codes` on every backend).
fn region_code_set(sg: &dyn StateSpace, set: &stg::StateSet) -> Vec<String> {
    let mut codes: Vec<String> = sg
        .set_codes(set)
        .into_iter()
        .map(|c| c.iter().map(|&x| if x { '1' } else { '0' }).collect())
        .collect();
    codes.sort();
    codes
}

// ---------------------------------------------------------------------
// Agreement properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// State counts, code multisets and the initial code agree.
    #[test]
    fn state_counts_and_codes_agree(spec in any_spec()) {
        let spaces = build_all(&spec);
        let reference = &spaces[0];
        for s in &spaces[1..] {
            prop_assert_eq!(s.num_states(), reference.num_states());
            prop_assert_eq!(s.marking_count(), reference.marking_count());
            prop_assert_eq!(s.initial_values(), reference.initial_values());
            prop_assert_eq!(s.decode_code(0), reference.decode_code(0), "initial code");
        }
        let mut expected: Vec<Vec<bool>> = (0..reference.num_states())
            .map(|i| reference.decode_code(i))
            .collect();
        expected.sort();
        for s in &spaces[1..] {
            let mut got: Vec<Vec<bool>> = (0..s.num_states()).map(|i| s.decode_code(i)).collect();
            got.sort();
            prop_assert_eq!(&got, &expected, "code multiset ({})", s.backend());
        }
    }

    /// The four-region partition of every signal agrees: same sizes, same
    /// code sets, and the regions partition the space.
    #[test]
    fn region_partitions_agree(spec in any_spec()) {
        let spaces = build_all(&spec);
        let reference = &spaces[0];
        for signal in spec.signals() {
            let r0 = synth::regions::signal_region_sets(&spec, &**reference, signal);
            let parts0 = [&r0.er_plus, &r0.er_minus, &r0.qr_plus, &r0.qr_minus];
            for s in &spaces[1..] {
                let r = synth::regions::signal_region_sets(&spec, &**s, signal);
                let parts = [&r.er_plus, &r.er_minus, &r.qr_plus, &r.qr_minus];
                let mut total = 0u128;
                for (p0, p) in parts0.iter().zip(&parts) {
                    prop_assert_eq!(reference.set_count(p0), s.set_count(p));
                    prop_assert_eq!(
                        region_code_set(&**reference, p0),
                        region_code_set(&**s, p)
                    );
                    total += s.set_count(p);
                }
                prop_assert_eq!(total, s.marking_count(), "regions partition the space");
            }
        }
    }

    /// The whole implementability report agrees: USC/CSC verdicts,
    /// conflict-pair counts, persistency, deadlock-freedom.
    #[test]
    fn implementability_reports_agree(spec in any_spec()) {
        let spaces = build_all(&spec);
        let reference = stg::properties::report_from_sg(&spec, &*spaces[0]);
        for s in &spaces[1..] {
            let report = stg::properties::report_from_sg(&spec, &**s);
            prop_assert_eq!(report.num_states, reference.num_states);
            prop_assert_eq!(report.unique_state_coding, reference.unique_state_coding);
            prop_assert_eq!(report.complete_state_coding, reference.complete_state_coding);
            prop_assert_eq!(report.csc_conflict_pairs, reference.csc_conflict_pairs);
            prop_assert_eq!(report.persistent, reference.persistent);
            prop_assert_eq!(report.persistency_violations, reference.persistency_violations);
            prop_assert_eq!(report.deadlock_free, reference.deadlock_free);
        }
    }

    /// CSC conflict *witnesses* agree as code classes, and every
    /// backend's `states_with_code` index returns consistent counts.
    #[test]
    fn conflict_witnesses_and_code_index_agree(spec in any_spec()) {
        let spaces = build_all(&spec);
        let reference = &spaces[0];
        let mut ref_conflicts: Vec<String> = stg::encoding::csc_conflicts(&spec, &**reference)
            .into_iter()
            .map(|c| c.code.iter().map(|&x| if x { '1' } else { '0' }).collect())
            .collect();
        ref_conflicts.sort();
        for s in &spaces[1..] {
            let mut got: Vec<String> = stg::encoding::csc_conflicts(&spec, &**s)
                .into_iter()
                .map(|c| c.code.iter().map(|&x| if x { '1' } else { '0' }).collect())
                .collect();
            got.sort();
            prop_assert_eq!(&got, &ref_conflicts, "conflict code classes ({})", s.backend());
        }
        for i in 0..reference.num_states() {
            let code = reference.decode_code(i);
            let expected = reference.states_with_code(&code).len();
            for s in &spaces[1..] {
                prop_assert_eq!(s.states_with_code(&code).len(), expected);
                prop_assert_eq!(s.set_count(&s.states_with_code_set(&code)), expected as u128);
            }
        }
    }

    /// On CSC-clean specifications all backends synthesise byte-identical
    /// next-state equations.
    #[test]
    fn equations_agree_on_csc_clean_specs(spec in any_spec()) {
        let spaces = build_all(&spec);
        prop_assume!(stg::encoding::has_csc(&spec, &*spaces[0]));
        prop_assume!(!spec.non_input_signals().is_empty());
        let render = |sg: &dyn StateSpace| -> Vec<String> {
            synth::nextstate::all_equations(&spec, sg)
                .expect("CSC-clean spec synthesises")
                .iter()
                .map(|e| e.display(&spec))
                .collect()
        };
        let reference = render(&*spaces[0]);
        for s in &spaces[1..] {
            prop_assert_eq!(render(&**s), reference.clone(), "equations ({})", s.backend());
        }
    }
}

// ---------------------------------------------------------------------
// Error paths: same `StgError` variants on every backend
// ---------------------------------------------------------------------

fn build_errors(spec: &Stg, bound: usize) -> Vec<StgError> {
    BACKENDS
        .iter()
        .map(|b| {
            b.build_bounded(spec, bound)
                .err()
                .unwrap_or_else(|| panic!("{b} unexpectedly built {}", spec.name()))
        })
        .collect()
}

#[test]
fn state_limit_errors_agree() {
    // 70 states > 16: every backend must cut off mid-traversal.
    let spec = token_ring(4, 4);
    for e in build_errors(&spec, 16) {
        assert!(
            matches!(e, StgError::Reach(petri::reach::ReachError::StateLimit(16))),
            "expected StateLimit(16), got {e:?}"
        );
    }
}

#[test]
fn unsafe_net_errors_agree() {
    // Firing x+ puts a second token on q: not safe.
    let mut b = StgBuilder::new("unsafe");
    let x = b.add_signal("x", SignalKind::Output);
    let xp = b.add_edge(x, SignalEdge::Rise);
    let xm = b.add_edge(x, SignalEdge::Fall);
    let p = b.add_place("p", 1);
    let q = b.add_place("q", 1);
    b.arc_pt(p, xp);
    b.arc_tp(xp, q);
    b.arc_pt(q, xm);
    b.arc_tp(xm, p);
    let spec = b.build();
    for e in build_errors(&spec, 1_000) {
        assert!(
            matches!(
                e,
                StgError::Reach(petri::reach::ReachError::BoundExceeded(_))
            ),
            "expected BoundExceeded, got {e:?}"
        );
    }
}

#[test]
fn inconsistent_edge_errors_agree() {
    // a+ → b+ → a+ cycle: the second a+ fires from value 1.
    let mut b = StgBuilder::new("inconsistent-edge");
    let a = b.add_signal("a", SignalKind::Output);
    let x = b.add_signal("b", SignalKind::Output);
    let a1 = b.add_edge(a, SignalEdge::Rise);
    let b1 = b.add_edge(x, SignalEdge::Rise);
    let a2 = b.add_edge(a, SignalEdge::Rise);
    b.connect(a1, b1);
    b.connect(b1, a2);
    let p = b.connect(a2, a1);
    b.mark_place(p, 1);
    let spec = b.build();
    for e in build_errors(&spec, 1_000) {
        assert!(
            matches!(e, StgError::InconsistentEdge { .. }),
            "expected InconsistentEdge, got {e:?}"
        );
    }
}

#[test]
fn inconsistent_code_errors_agree() {
    // One-shot choice whose branches disagree on x at the merge place:
    // the merge marking is reached with x = 1 and x = 0. No edge ever
    // fires from a wrong value, so this must surface as the
    // InconsistentCode variant on every backend.
    let mut b = StgBuilder::new("inconsistent-code");
    let x = b.add_signal("x", SignalKind::Output);
    let xp = b.add_edge(x, SignalEdge::Rise);
    let skip = b.add_dummy("skip");
    let choice = b.add_place("choice", 1);
    let merge = b.add_place("merge", 0);
    b.arc_pt(choice, xp);
    b.arc_pt(choice, skip);
    b.arc_tp(xp, merge);
    b.arc_tp(skip, merge);
    let spec = b.build();
    for e in build_errors(&spec, 1_000) {
        assert!(
            matches!(e, StgError::InconsistentCode { .. }),
            "expected InconsistentCode, got {e:?}"
        );
    }
}

// ---------------------------------------------------------------------
// The scale probe: a ≥ 10⁶-state build that never materialises
// ---------------------------------------------------------------------

/// `Backend::SymbolicSet` builds a `C(24,12)` ≈ 2.7 M-state token ring
/// and answers implementability queries while the observer counters
/// prove that no state was ever decoded and no explicit view was
/// materialised. (The explicit backend cannot even represent this space
/// within the default bound.)
#[test]
fn million_state_build_stays_symbolic() {
    let spec = token_ring(12, 12);
    let space = SymbolicSetSpace::build_bounded(&spec, 5_000_000)
        .expect("resident-BDD build of the 2.7M-state ring");
    assert_eq!(
        space.num_markings(),
        2_704_156,
        "C(24,12) reachable markings"
    );
    assert!(space.num_markings() >= 1_000_000);
    assert_eq!(space.marking_count(), space.num_markings());
    assert_eq!(
        space.set_count(&space.all_states()),
        space.num_markings(),
        "set-level count of the full space"
    );

    // Set-level implementability queries at full scale.
    assert!(
        !stg::encoding::has_usc(&spec, &space),
        "2^12 codes < 2.7M states"
    );
    assert!(!stg::encoding::has_csc(&spec, &space));
    assert!(
        stg::persistency::is_persistent(&spec, &space),
        "marked-graph ring"
    );
    assert!(!space.has_deadlock());
    for signal in spec.signals().take(3) {
        let sets = synth::regions::signal_region_sets(&spec, &space, signal);
        let total = space.set_count(&sets.er_plus)
            + space.set_count(&sets.er_minus)
            + space.set_count(&sets.qr_plus)
            + space.set_count(&sets.qr_minus);
        assert_eq!(total, space.num_markings(), "regions partition the space");
    }

    // The memory probe: everything above ran without decoding a single
    // state or materialising the explicit view.
    assert_eq!(space.decoded_states(), 0, "no per-state decode happened");
    assert!(
        !space.is_materialised(),
        "no explicit view was materialised"
    );

    // Witness decode still works — and stays bounded: one block.
    let code = space.decode_code(1_000_000);
    assert_eq!(code.len(), spec.num_signals());
    assert!(space.decoded_states() > 0);
    assert!(
        space.decoded_states() <= 512,
        "one LRU block, not the space"
    );
    assert!(!space.is_materialised());
}

/// Cache keys shard per backend: a result computed by one engine is
/// never served to another (their event logs and stats differ even when
/// the circuit is byte-identical).
#[test]
fn cache_keys_shard_per_backend() {
    let spec = stg::examples::vme_read();
    let keys: Vec<String> = BACKENDS
        .iter()
        .map(|&backend| {
            let options = asyncsynth::SynthesisOptions {
                backend,
                ..Default::default()
            };
            asyncsynth::cache_key(&spec, &options, asyncsynth::CacheStage::Full).to_hex()
        })
        .collect();
    assert_ne!(keys[0], keys[1]);
    assert_ne!(keys[1], keys[2]);
    assert_ne!(keys[0], keys[2]);
}
