//! Cache semantics of the resumable cached flow: warm hits re-run no
//! synthesis stage and return byte-identical results; corrupted entries
//! are detected and re-synthesised, never trusted; the CSC stage
//! checkpoint resumes the flow past the candidate search.

use asyncsynth::{
    cache_key, run_cached, run_cached_with, CacheOutcome, CacheStage, FlowEvent, FlowObserver,
    ResultCache, SynthesisOptions,
};

/// Records every stage callback and event — the probe that proves which
/// stages (if any) actually ran.
#[derive(Default)]
struct Probe {
    stages: Vec<String>,
    events: Vec<String>,
}

impl FlowObserver for Probe {
    fn stage(&mut self, stage: &str, events: &[FlowEvent]) {
        self.stages.push(stage.to_owned());
        self.events.extend(events.iter().map(ToString::to_string));
    }
}

fn temp_cache(tag: &str) -> ResultCache {
    let root = std::env::temp_dir().join(format!(
        "asyncsynth-flow-cache-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    ResultCache::open(root).expect("cache opens")
}

#[test]
fn warm_hit_is_byte_identical_and_runs_no_stage() {
    let cache = temp_cache("warm");
    let spec = stg::examples::vme_read();
    let options = SynthesisOptions::default();

    let mut cold = Probe::default();
    let first =
        run_cached_with(&spec, &options, Some(&cache), &mut cold).expect("cold run succeeds");
    assert_eq!(first.outcome, CacheOutcome::Miss);
    assert_eq!(cold.stages, ["check", "csc", "synthesize", "verify"]);
    assert!(
        cold.events.iter().any(|e| e.contains("state space built")),
        "cold run builds a state space"
    );

    let mut warm = Probe::default();
    let second =
        run_cached_with(&spec, &options, Some(&cache), &mut warm).expect("warm run succeeds");
    assert_eq!(second.outcome, CacheOutcome::Hit);
    assert_eq!(
        warm.stages,
        ["cache"],
        "no synthesis stage runs on a warm hit"
    );
    assert!(
        warm.events.iter().all(|e| e.starts_with("cache hit")),
        "only the cache-hit event is emitted: {:?}",
        warm.events
    );
    assert_eq!(
        second.summary.to_json().render(),
        first.summary.to_json().render(),
        "warm result is byte-identical"
    );

    let stats = cache.stats();
    assert!(stats.hits >= 1, "{stats:?}");
    assert_eq!(stats.corrupt, 0);
}

#[test]
fn corrupted_entries_are_detected_and_resynthesised() {
    let cache = temp_cache("corrupt");
    let spec = stg::examples::vme_read();
    let options = SynthesisOptions::default();
    let first = run_cached(&spec, &options, &cache).expect("cold run");
    let full_key = first.key.expect("cache enabled");

    // Corrupt the full-result entry: the next run must not trust it.
    // (The CSC checkpoint survives, so the flow resumes at that stage.)
    let full_path = cache.entry_path(&full_key);
    std::fs::write(&full_path, "{\"version\":1,\"garbage\":true").expect("corrupt entry");
    let second = run_cached(&spec, &options, &cache).expect("re-synthesis succeeds");
    assert_eq!(second.outcome, CacheOutcome::CscResumed);
    // The circuit is identical; only the run's own log differs — the
    // events (and the counters derived from them) honestly record the
    // checkpoint resume instead of the candidate search.
    let without_run_log = |summary: &asyncsynth::SynthesisSummary| {
        let mut s = summary.clone();
        s.events.clear();
        s.metrics = asyncsynth::telemetry::Counters::new();
        s.to_json().render()
    };
    assert_eq!(
        without_run_log(&second.summary),
        without_run_log(&first.summary),
        "re-synthesised result matches"
    );
    assert_eq!(cache.stats().corrupt, 1);

    // Corrupt both the full entry and the CSC checkpoint: everything
    // re-runs from scratch.
    let csc_path = cache.entry_path(&cache_key(&spec, &options, CacheStage::Csc));
    std::fs::write(&full_path, "not json at all").expect("corrupt full");
    std::fs::write(&csc_path, "also not json").expect("corrupt csc");
    let third = run_cached(&spec, &options, &cache).expect("full re-synthesis succeeds");
    assert_eq!(third.outcome, CacheOutcome::Miss);
    assert_eq!(
        third.summary.to_json().render(),
        first.summary.to_json().render()
    );
    assert_eq!(cache.stats().corrupt, 3);

    // The healed entries serve hits again.
    let fourth = run_cached(&spec, &options, &cache).expect("healed run");
    assert_eq!(fourth.outcome, CacheOutcome::Hit);
}

#[test]
fn csc_checkpoint_resumes_past_the_search() {
    let cache = temp_cache("resume");
    let spec = stg::examples::vme_read();
    let options = SynthesisOptions::default();
    let first = run_cached(&spec, &options, &cache).expect("cold run");

    // Drop only the full result; the CSC checkpoint remains.
    std::fs::remove_file(cache.entry_path(&first.key.expect("key"))).expect("drop full entry");
    let mut probe = Probe::default();
    let second = run_cached_with(&spec, &options, Some(&cache), &mut probe).expect("resumed run");
    assert_eq!(second.outcome, CacheOutcome::CscResumed);
    assert!(
        probe
            .events
            .iter()
            .any(|e| e.starts_with("csc checkpoint resumed")),
        "{:?}",
        probe.events
    );
    assert!(
        !probe.events.iter().any(|e| e.starts_with("csc candidates")),
        "the candidate search must not re-run: {:?}",
        probe.events
    );
    assert_eq!(
        second.summary.equations, first.summary.equations,
        "resumed synthesis reaches the same circuit"
    );
}

#[test]
fn stage_keys_are_distinct_and_architecture_scoped() {
    let spec = stg::examples::vme_read();
    let options = SynthesisOptions::default();
    let full = cache_key(&spec, &options, CacheStage::Full);
    let csc = cache_key(&spec, &options, CacheStage::Csc);
    let check = cache_key(&spec, &options, CacheStage::Check);
    assert_ne!(full, csc);
    assert_ne!(full, check);
    assert_ne!(csc, check);

    let mut latch = options.clone();
    latch.architecture = asyncsynth::Architecture::CElement;
    assert_ne!(
        cache_key(&spec, &latch, CacheStage::Full),
        full,
        "architecture changes the full key"
    );
    assert_eq!(
        cache_key(&spec, &latch, CacheStage::Csc),
        csc,
        "the CSC checkpoint is shared across architectures"
    );
}

#[test]
fn cancellation_aborts_between_stages() {
    struct CancelAfterCheck {
        stages_seen: usize,
    }
    impl FlowObserver for CancelAfterCheck {
        fn stage(&mut self, _stage: &str, _events: &[FlowEvent]) {
            self.stages_seen += 1;
        }
        fn cancelled(&self) -> bool {
            self.stages_seen >= 1
        }
    }
    let spec = stg::examples::vme_read();
    let options = SynthesisOptions::default();
    let mut observer = CancelAfterCheck { stages_seen: 0 };
    let err = run_cached_with(&spec, &options, None, &mut observer)
        .expect_err("cancellation aborts the run");
    assert!(matches!(err, asyncsynth::PipelineError::Cancelled));
}

#[test]
fn stale_csc_checkpoint_falls_back_to_the_full_search() {
    let cache = temp_cache("stale-checkpoint");
    let spec = stg::examples::vme_read();
    let options = SynthesisOptions::default();

    // Plant a checkpoint whose "winning candidate" is the *unresolved*
    // specification (CSC conflicts intact) — as a checkpoint written
    // under incompatible options would be. Resuming from it must fail
    // synthesis and fall back to the real search, not fail the run.
    let csc_key = cache_key(&spec, &options, CacheStage::Csc);
    let bogus = asyncsynth::Json::obj(vec![
        ("spec", asyncsynth::Json::str(stg::parse::write_g(&spec))),
        ("transformation", asyncsynth::Json::Null),
    ]);
    cache.store(&csc_key, &bogus).expect("plant checkpoint");

    let run = run_cached(&spec, &options, &cache).expect("fallback succeeds");
    assert_eq!(
        run.outcome,
        CacheOutcome::Miss,
        "stale checkpoint not counted as a resume"
    );
    assert_eq!(run.summary.verification, "passed");

    // The stale checkpoint was overwritten: the next miss resumes from
    // the healthy one.
    std::fs::remove_file(cache.entry_path(&run.key.expect("key"))).expect("drop full entry");
    let again = run_cached(&spec, &options, &cache).expect("resumed run");
    assert_eq!(again.outcome, CacheOutcome::CscResumed);
    assert_eq!(again.summary.equations, run.summary.equations);
}
