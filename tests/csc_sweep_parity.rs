//! Parity and regression tests for the parallel, pruned, memoising CSC
//! candidate sweep: the engine may only change *when* work happens —
//! never *what* comes out. Serial vs parallel (1, 2, N threads) and
//! pruned vs unpruned sweeps must produce identical candidate rankings,
//! descriptions and winning equations on the three VME controllers and
//! micropipeline(2), on both state-space backends; bound-skipped
//! candidates must be reported, and no pipeline path may rebuild the
//! winning candidate's state space.

use asyncsynth::{
    run_cached_with, Backend, FlowEvent, FlowObserver, SweepOptions, Synthesis, SynthesisOptions,
};
use synth::csc::{
    concurrency_reduction_sweep, insertion_sweep, resolve_by_signal_insertion_with,
    resolve_mixed_sweep, Sweep,
};

/// Specs with CSC conflicts — the raw candidate-grid parity matrix.
/// (The CSC-clean `vme_read_csc` is covered by the flow-level parity
/// test below: sweeping a clean controller accepts almost the whole
/// grid and pays exact minimisation per candidate, which no pipeline
/// path ever does — prohibitively slow for a debug-mode unit test.)
fn sweep_specs() -> Vec<(&'static str, stg::Stg)> {
    vec![
        ("vme_read", stg::examples::vme_read()),
        ("vme_read_write", stg::examples::vme_read_write()),
        ("micropipeline-2", stg::examples::micropipeline(2)),
    ]
}

/// All four controllers — the end-to-end parity and no-rebuild matrix.
fn flow_specs() -> Vec<(&'static str, stg::Stg)> {
    let mut specs = sweep_specs();
    specs.push(("vme_read_csc", stg::examples::vme_read_csc()));
    specs
}

fn opts(threads: usize, prune: bool) -> SweepOptions {
    SweepOptions {
        threads,
        prune,
        ..SweepOptions::default()
    }
}

/// The full observable outcome of a sweep: every candidate's
/// description and state count, in rank order, plus the winner's
/// synthesised equations (from its carried space — no rebuild).
fn fingerprint(sweep: &Sweep, spec_name: &str) -> Vec<(String, usize)> {
    let mut out: Vec<(String, usize)> = sweep
        .candidates
        .iter()
        .map(|c| (c.description.clone(), c.num_states))
        .collect();
    if let Some(winner) = sweep.candidates.first() {
        let space = winner
            .space
            .as_deref()
            .unwrap_or_else(|| panic!("{spec_name}: winner must carry its space"));
        let circuit = synth::complex_gate::synthesize_complex_gates(&winner.stg, space)
            .unwrap_or_else(|e| panic!("{spec_name}: winner synthesises: {e}"));
        out.push((circuit.display_equations(&winner.stg), usize::MAX));
    }
    out
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    for (name, spec) in sweep_specs() {
        for backend in [Backend::Explicit, Backend::Symbolic] {
            let serial = insertion_sweep(&spec, backend, &opts(1, false));
            let baseline = fingerprint(&serial, name);
            for threads in [2, 0] {
                let parallel = insertion_sweep(&spec, backend, &opts(threads, false));
                assert_eq!(
                    fingerprint(&parallel, name),
                    baseline,
                    "{name}/{backend}: {threads}-thread sweep must match serial"
                );
                assert_eq!(
                    parallel.stats, serial.stats,
                    "{name}/{backend}: sweep counters must be thread-independent"
                );
            }
        }
    }
}

#[test]
fn pruned_sweep_is_identical_and_actually_prunes() {
    let mut pruned_somewhere = false;
    for (name, spec) in sweep_specs() {
        for backend in [Backend::Explicit, Backend::Symbolic] {
            let unpruned = insertion_sweep(&spec, backend, &opts(1, false));
            for threads in [1, 2] {
                let pruned = insertion_sweep(&spec, backend, &opts(threads, true));
                assert_eq!(
                    fingerprint(&pruned, name),
                    fingerprint(&unpruned, name),
                    "{name}/{backend}: pruning must not change the ranking"
                );
                assert_eq!(
                    pruned.stats.pruned + pruned.stats.evaluated,
                    pruned.stats.grid,
                    "{name}/{backend}: every pair is pruned or evaluated"
                );
                pruned_somewhere |= pruned.stats.pruned > 0;
            }
        }
    }
    assert!(
        pruned_somewhere,
        "conflict-locality pruning must fire on at least one controller"
    );
}

#[test]
fn flow_output_is_byte_identical_across_sweep_configurations() {
    // End-to-end: the complete synthesis summary — equations, netlist,
    // diagnostics, everything a client or cache sees — must not depend
    // on the sweep's thread count (events and metrics included: the
    // sweep counters are deterministic). Pruning changes only the
    // counters — in the event log and in the metric set — so its
    // comparison strips both; the cache-key test below is the flip
    // side: pruning splits cache entries for exactly this reason.
    for (name, spec) in flow_specs() {
        for backend in [Backend::Explicit, Backend::Symbolic] {
            let run = |threads: usize, prune: bool| {
                let mut options = SynthesisOptions {
                    backend,
                    ..SynthesisOptions::default()
                };
                options.sweep.threads = threads;
                options.sweep.prune = prune;
                let verified = Synthesis::with_options(spec.clone(), options.clone())
                    .run()
                    .unwrap_or_else(|e| panic!("{name}/{backend} synthesises: {e}"));
                asyncsynth::SynthesisSummary::from_verified(&verified, &options)
            };
            let serial = run(1, true);
            let parallel = run(0, true);
            assert_eq!(
                parallel.to_json().render(),
                serial.to_json().render(),
                "{name}/{backend}: flow output must be byte-identical across thread counts"
            );
            if backend == Backend::Explicit {
                // Unpruned flows only on the explicit backend: debug-mode
                // symbolic sweeps of the full move grid are too slow for
                // a unit test, and pruning is backend-agnostic anyway.
                let mut unpruned = run(1, false);
                let mut pruned = serial.clone();
                unpruned.events.clear();
                pruned.events.clear();
                unpruned.metrics = asyncsynth::telemetry::Counters::new();
                pruned.metrics = asyncsynth::telemetry::Counters::new();
                assert_eq!(
                    unpruned.to_json().render(),
                    pruned.to_json().render(),
                    "{name}: pruning must not change the synthesised result"
                );
            }
        }
    }
}

#[test]
fn trace_counters_are_byte_identical_across_sweep_threads() {
    // The acceptance bar of the telemetry layer: a traced run's span
    // tree, projected to its deterministic fields (no wall times, no
    // advisory counters), must render byte-identically whatever the
    // sweep's thread count — per stage and per CSC candidate, not just
    // at the flow root.
    for (name, spec) in flow_specs() {
        let run = |threads: usize| {
            let mut options = SynthesisOptions::default();
            options.sweep.threads = threads;
            let mut trace = asyncsynth::TraceBuilder::new();
            let run = run_cached_with(&spec, &options, None, &mut trace)
                .unwrap_or_else(|e| panic!("{name} synthesises: {e}"));
            let span = trace.finish(run.summary.metrics.clone(), run.advisory.clone());
            (span.render_deterministic(), run.summary.metrics.render())
        };
        let (serial_span, serial_metrics) = run(1);
        assert!(
            serial_metrics.contains("\"states_explored\":"),
            "{name}: the metric set covers verification work: {serial_metrics}"
        );
        for threads in [2, 0] {
            let (span, metrics) = run(threads);
            assert_eq!(
                span, serial_span,
                "{name}: deterministic span projection must not depend on {threads} threads"
            );
            assert_eq!(
                metrics, serial_metrics,
                "{name}: summary metrics must not depend on {threads} threads"
            );
        }
    }
}

#[test]
fn reduction_and_mixed_sweeps_are_deterministic_across_threads() {
    // vme_read has reduction candidates; vme_read_write needs the mixed
    // search (a reduction plus a state signal). The symbolic backend is
    // exercised on the small controller — a debug-mode symbolic sweep
    // of the full Fig. 5 move grid would dominate the suite's runtime.
    let read = stg::examples::vme_read();
    let read_write = stg::examples::vme_read_write();
    let describe = |r: &Option<synth::csc::CscResolutionWithSpace>| {
        r.as_ref().map(|r| (r.description.clone(), r.num_states))
    };
    for backend in [Backend::Explicit, Backend::Symbolic] {
        let reduction_baseline = concurrency_reduction_sweep(&read, backend, &opts(1, false), None);
        for threads in [2, 0] {
            for prune in [false, true] {
                let reduction =
                    concurrency_reduction_sweep(&read, backend, &opts(threads, prune), None);
                assert_eq!(
                    describe(&reduction.0),
                    describe(&reduction_baseline.0),
                    "{backend}: reduction winner must be scan-order deterministic"
                );
                assert_eq!(
                    reduction.1, reduction_baseline.1,
                    "{backend}: reduction counters must be thread-independent \
                     (early exit counts exactly the indices up to the winner)"
                );
            }
        }
    }
    let mixed_baseline =
        resolve_mixed_sweep(&read_write, 5, Backend::Explicit, &opts(1, false), None);
    for threads in [2, 0] {
        for prune in [false, true] {
            let mixed = resolve_mixed_sweep(
                &read_write,
                5,
                Backend::Explicit,
                &opts(threads, prune),
                None,
            );
            assert_eq!(
                describe(&mixed.0),
                describe(&mixed_baseline.0),
                "mixed resolution must be deterministic"
            );
        }
    }
    let winner = mixed_baseline.0.expect("Fig. 5 resolves");
    assert!(
        winner.space.is_some(),
        "mixed resolution carries its validated space"
    );
    // Symbolic mixed parity on the single-conflict controller.
    let symbolic_serial = resolve_mixed_sweep(&read, 5, Backend::Symbolic, &opts(1, false), None);
    let symbolic_parallel = resolve_mixed_sweep(&read, 5, Backend::Symbolic, &opts(0, true), None);
    assert_eq!(
        describe(&symbolic_parallel.0),
        describe(&symbolic_serial.0),
        "symbolic mixed resolution must be deterministic"
    );
}

#[test]
fn insertion_resolution_carries_its_space() {
    // Regression: `resolve_by_signal_insertion_with` used to convert the
    // winner via `Into`, dropping the validated space and forcing
    // callers to rebuild it.
    for spec in [stg::examples::vme_read(), stg::examples::vme_read_csc()] {
        for backend in [Backend::Explicit, Backend::Symbolic] {
            let r = resolve_by_signal_insertion_with(&spec, backend)
                .expect("resolution exists (or CSC already holds)");
            let space = r.space.as_ref().expect("resolution carries its space");
            assert_eq!(r.num_states, space.num_states());
        }
    }
}

/// Records every stage callback and event — proves which stages built
/// state spaces (the probe idiom of `tests/cache.rs`).
#[derive(Default)]
struct Probe {
    per_stage: Vec<(String, Vec<String>)>,
}

impl FlowObserver for Probe {
    fn stage(&mut self, stage: &str, events: &[FlowEvent]) {
        self.per_stage.push((
            stage.to_owned(),
            events.iter().map(ToString::to_string).collect(),
        ));
    }
}

#[test]
fn no_pipeline_path_rebuilds_the_winning_candidates_space() {
    // The check stage builds the one and only state space; the CSC
    // sweeps seed from it and hand the winner's validated space to
    // synthesis. A second "state space built" event would be a rebuild.
    for (name, spec) in flow_specs() {
        let mut probe = Probe::default();
        run_cached_with(&spec, &SynthesisOptions::default(), None, &mut probe)
            .unwrap_or_else(|e| panic!("{name} synthesises: {e}"));
        for (stage, events) in &probe.per_stage {
            let builds = events
                .iter()
                .filter(|e| e.starts_with("state space built"))
                .count();
            if stage == "check" {
                assert_eq!(builds, 1, "{name}: the check stage builds the space");
            } else {
                assert_eq!(
                    builds, 0,
                    "{name}: stage {stage} must not rebuild a state space: {events:?}"
                );
            }
        }
    }
}

#[test]
fn bound_skipped_candidates_are_reported_never_silent() {
    // A bound below every candidate's state count: the sweep finds
    // nothing, but says exactly how many candidates it skipped.
    let spec = stg::examples::vme_read();
    let tight = SweepOptions {
        threads: 1,
        bound: 4,
        ..SweepOptions::default()
    };
    let sweep = insertion_sweep(&spec, Backend::Explicit, &tight);
    assert!(sweep.candidates.is_empty(), "nothing fits 4 states");
    assert!(
        sweep.stats.skipped_by_bound > 0,
        "skipped candidates are counted: {:?}",
        sweep.stats
    );

    // Through the pipeline, the failure itself carries the diagnosis.
    let mut options = SynthesisOptions::default();
    options.sweep.bound = 4;
    options.csc = asyncsynth::CscStrategy::SignalInsertion;
    let err = Synthesis::with_options(spec, options)
        .run()
        .expect_err("no candidate fits 4 states");
    let message = err.to_string();
    assert!(
        message.contains("exceeded the state bound"),
        "the error names the bound skips: {message}"
    );
    match err {
        asyncsynth::PipelineError::CscUnresolved { events } => {
            assert!(
                events.iter().any(|e| matches!(
                    e,
                    FlowEvent::CscSweep { stats, .. } if stats.skipped_by_bound > 0
                )),
                "the sweep event records the skips: {events:?}"
            );
        }
        other => panic!("expected CscUnresolved, got {other:?}"),
    }
}

#[test]
fn sweep_cache_keys_share_across_threads_but_split_on_bound_and_prune() {
    let spec = stg::examples::vme_read();
    let base = SynthesisOptions::default();
    let key = |options: &SynthesisOptions| {
        asyncsynth::cache_key(&spec, options, asyncsynth::CacheStage::Full).to_hex()
    };
    let mut threads = base.clone();
    threads.sweep.threads = 7;
    let mut prune = base.clone();
    prune.sweep.prune = false;
    let mut bound = base.clone();
    bound.sweep.bound = 4;
    assert_eq!(
        key(&threads),
        key(&base),
        "thread count is output-neutral and must share cache entries"
    );
    assert_ne!(
        key(&prune),
        key(&base),
        "pruning changes the cached diagnostics and must split cache entries"
    );
    assert_ne!(
        key(&bound),
        key(&base),
        "the bound can change results and must split cache entries"
    );
}
