//! Regression baseline for the decomposed-micropipeline failure the
//! ROADMAP tracks: fan-in-bounded decomposition of micropipeline
//! controllers fails verification on every CSC candidate — the naive
//! decomposition is hazardous and resubstitution does not repair it.
//! The Boolean-relation decomposition work of a later PR must move
//! these exact numbers; until then they are pinned here, including the
//! per-gate hazard attribution the witness-decoding engine reports.

use asyncsynth::{Architecture, FlowEvent, PipelineError, Synthesis, VerifyOptions};
use stg::examples::micropipeline;
use stg::StateGraph;
use synth::complex_gate::synthesize_complex_gates;
use synth::decompose::{decompose, resubstitute};
use synth::NetId;
use verify::verify_circuit;

/// The `(de-excited gate, causing event)` classes of the repaired
/// (resubstituted) two-stage micropipeline's verification failure.
const RESUB_HAZARDS: [(&str, &str); 7] = [
    ("a0", "gate map1"),
    ("a0", "gate map4"),
    ("csc0", "gate map4"),
    ("map0", "gate a0"),
    ("map0", "input r0-"),
    ("map1", "gate a1"),
    ("map1", "gate map0"),
];

#[test]
fn decomposed_micropipeline2_failure_is_pinned() {
    let err = Synthesis::new(micropipeline(2))
        .architecture(Architecture::Decomposed)
        .run()
        .expect_err("decomposed micropipeline(2) must still fail verification");
    let PipelineError::CandidatesExhausted { last, events } = err else {
        panic!("expected the candidate loop to exhaust");
    };
    let PipelineError::VerificationFailed(report) = *last else {
        panic!("expected a verification failure, got {last}");
    };
    assert!(
        !report.hit_state_limit(),
        "a real failure, not a bounded run"
    );
    assert_eq!(report.states_explored, 188, "composed states of the repair");
    assert_eq!(report.violations.len(), 64);
    let hazards: Vec<(String, String)> = report
        .hazards
        .iter()
        .map(|h| (h.gate_output.clone(), h.caused_by.clone()))
        .collect();
    let pinned: Vec<(String, String)> = RESUB_HAZARDS
        .iter()
        .map(|&(g, c)| (g.to_owned(), c.to_owned()))
        .collect();
    assert_eq!(
        hazards, pinned,
        "hazard classes moved — update the baseline"
    );
    // Witnesses are decoded: every hazard names the map nets' values.
    for h in &report.hazards {
        assert!(
            h.witness.nets.iter().any(|(n, _)| n.starts_with("map")),
            "witness must expose the internal nets: {:?}",
            h.witness
        );
    }
    assert!(
        events
            .iter()
            .any(|e| matches!(e, FlowEvent::CandidateRejected { .. })),
        "the rejection must be on record"
    );
}

#[test]
fn naive_decomposition_baseline_is_pinned() {
    // The pre-repair numbers, for the same later-PR comparison: the
    // naive two-input decomposition of the (CSC-resolved) controller.
    let spec = micropipeline(2);
    let resolved = Synthesis::new(spec)
        .architecture(Architecture::Decomposed)
        .check()
        .unwrap()
        .resolve_csc()
        .unwrap();
    assert_eq!(resolved.candidates().len(), 1, "one mixed CSC candidate");
    let cand_spec = resolved.candidates()[0].spec.clone();
    let sg = StateGraph::build(&cand_spec).unwrap();
    let circuit = synthesize_complex_gates(&cand_spec, &sg).unwrap();
    let naive = decompose(&cand_spec, &circuit, 2);
    let nets: Vec<NetId> = cand_spec.signals().map(|s| naive.signal_net(s)).collect();
    let report = verify_circuit(&cand_spec, &sg, naive.netlist(), &nets);
    assert_eq!(report.states_explored, 276);
    assert_eq!(report.hazards.len(), 7);
    assert_eq!(report.violations.len(), 76);

    // And resubstitution, today, does not repair it.
    let resub = resubstitute(&cand_spec, &sg, &naive);
    let rnets: Vec<NetId> = cand_spec.signals().map(|s| resub.signal_net(s)).collect();
    let repaired = verify_circuit(&cand_spec, &sg, resub.netlist(), &rnets);
    assert!(
        !repaired.is_speed_independent(),
        "if this starts passing, the ROADMAP decomposition item is done: {}",
        repaired.summary()
    );
}

#[test]
fn decomposed_failure_is_identical_under_incremental_verification() {
    let run = |incremental: bool| {
        let err = Synthesis::new(micropipeline(2))
            .architecture(Architecture::Decomposed)
            .verify_options(VerifyOptions::default().with_incremental(incremental))
            .run()
            .expect_err("still fails");
        match err {
            PipelineError::CandidatesExhausted { last, .. } => match *last {
                PipelineError::VerificationFailed(report) => *report,
                other => panic!("unexpected inner error {other}"),
            },
            other => panic!("unexpected error {other}"),
        }
    };
    assert_eq!(run(false), run(true), "incremental mode is output-neutral");
}
