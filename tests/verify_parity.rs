//! Verification-engine parity: the explicit-BFS and composed
//! spec-tracking strategies — and the memoising incremental layer —
//! must be observationally identical on every backend, and the
//! composed strategy must run set-level on resident symbolic spaces
//! above the materialise limit, where the pipeline previously refused
//! per-state verification outright.

use asyncsynth::{Backend, Synthesis, SynthesisOptions, SynthesisSummary};
use stg::examples::{micropipeline, vme_read, vme_read_csc, vme_read_write};
use stg::{SignalEdge, SignalKind, StateSpace, Stg, StgBuilder};
use synth::complex_gate::synthesize_complex_gates;
use synth::{GateKind, NetId, Netlist};
use verify::{verify_with, IncrementalVerifier, VerifyOptions, VerifyStrategy};

const BACKENDS: [Backend; 3] = [Backend::Explicit, Backend::Symbolic, Backend::SymbolicSet];
const STRATEGIES: [VerifyStrategy; 2] = [VerifyStrategy::ExplicitBfs, VerifyStrategy::Composed];

fn specs() -> Vec<(&'static str, Stg)> {
    vec![
        ("vme_read", vme_read()),
        ("vme_read_csc", vme_read_csc()),
        ("vme_read_write", vme_read_write()),
        ("micropipeline2", micropipeline(2)),
    ]
}

/// Direct engine parity: identical reports — hazards, violations,
/// decoded witnesses and `states_explored` — across both strategies,
/// all three backends, and the incremental layer.
#[test]
fn reports_identical_across_strategies_and_backends() {
    for (name, spec) in specs() {
        // Synthesise once on the explicit backend; CSC-clean specs only
        // (the others go through the flow-level test below).
        let space = Backend::Explicit.build(&spec).unwrap();
        let Ok(circuit) = synthesize_complex_gates(&spec, &*space) else {
            continue;
        };
        let nets: Vec<NetId> = spec.signals().map(|s| circuit.signal_net(s)).collect();
        let reference = verify_with(
            &spec,
            &*space,
            circuit.netlist(),
            &nets,
            &VerifyOptions::default().with_strategy(VerifyStrategy::ExplicitBfs),
        );
        for backend in BACKENDS {
            let space = backend.build(&spec).unwrap();
            for strategy in STRATEGIES {
                let report = verify_with(
                    &spec,
                    &*space,
                    circuit.netlist(),
                    &nets,
                    &VerifyOptions::default().with_strategy(strategy),
                );
                assert_eq!(
                    report, reference,
                    "{name}: {backend}/{strategy} diverges from the reference"
                );
            }
            let mut verifier = IncrementalVerifier::new();
            for _ in 0..2 {
                // Cold, then a pure cache hit: both byte-identical.
                let report = verifier.verify(
                    &spec,
                    &*space,
                    circuit.netlist(),
                    &nets,
                    &VerifyOptions::default().with_incremental(true),
                );
                assert_eq!(report, reference, "{name}: incremental on {backend}");
            }
            assert_eq!(verifier.stats().full_hits, 1, "{name}: repeat is a hit");
        }
    }
}

/// The backends the flow-level byte-parity matrix covers. Debug builds
/// stick to the explicit backend — the symbolic backends' CSC sweeps
/// take minutes unoptimised, and the `verify-differential` CI job runs
/// the full three-backend matrix in release — while the cheap
/// *verify-report* parity above covers all three backends in every
/// profile.
fn flow_backends() -> &'static [Backend] {
    if cfg!(debug_assertions) {
        &[Backend::Explicit]
    } else {
        &BACKENDS
    }
}

/// Flow-level byte parity: the rendered `SynthesisSummary` JSON —
/// equations, netlist, verification, the whole event log — is identical
/// whatever the backend, the spec-tracking strategy, or the incremental
/// flag (which is why strategy and incremental stay out of cache keys).
#[test]
fn pipeline_output_byte_identical_across_strategies_and_backends() {
    for (name, spec) in specs() {
        let run = |backend: Backend, strategy: VerifyStrategy, incremental: bool| -> String {
            let options = SynthesisOptions {
                backend,
                verify: VerifyOptions::default()
                    .with_strategy(strategy)
                    .with_incremental(incremental),
                ..Default::default()
            };
            let verified = Synthesis::with_options(spec.clone(), options.clone())
                .run()
                .unwrap_or_else(|e| panic!("{name} ({backend}/{strategy}): {e}"));
            SynthesisSummary::from_verified(&verified, &options)
                .to_json()
                .render()
        };
        // The summary names its backend, so cross-backend comparison
        // normalises that one field; everything else — equations,
        // netlist, verification, the whole event log — must be
        // byte-equal.
        let neutral = |text: &str, backend: Backend| {
            text.replace(
                &format!("\"backend\":\"{}\"", backend.name()),
                "\"backend\":\"*\"",
            )
            .replace(&format!("({})", backend.name()), "(*)")
        };
        let reference = neutral(
            &run(Backend::Explicit, VerifyStrategy::ExplicitBfs, false),
            Backend::Explicit,
        );
        for &backend in flow_backends() {
            for strategy in STRATEGIES {
                assert_eq!(
                    neutral(&run(backend, strategy, false), backend),
                    reference,
                    "{name}: {backend}/{strategy} flow bytes"
                );
            }
            assert_eq!(
                neutral(&run(backend, VerifyStrategy::Composed, true), backend),
                reference,
                "{name}: {backend}/incremental flow bytes"
            );
        }
    }
}

/// The telemetry split: the deterministic metric set of the summary is
/// byte-identical across verify strategies, the incremental flag and
/// (in release, where the flow matrix runs) all three backends — while
/// the advisory counters legitimately vary and ride outside the
/// summary, on [`asyncsynth::Verified::advisory_metrics`].
#[test]
fn deterministic_metrics_identical_while_advisory_counters_ride_outside() {
    for (name, spec) in specs() {
        let run = |backend: Backend, strategy: VerifyStrategy, incremental: bool| {
            let options = SynthesisOptions {
                backend,
                verify: VerifyOptions::default()
                    .with_strategy(strategy)
                    .with_incremental(incremental),
                ..Default::default()
            };
            let verified = Synthesis::with_options(spec.clone(), options.clone())
                .run()
                .unwrap_or_else(|e| panic!("{name} ({backend}/{strategy}): {e}"));
            let summary = SynthesisSummary::from_verified(&verified, &options);
            (
                summary.metrics.render(),
                verified.advisory_metrics().clone(),
            )
        };
        let (reference, baseline_advisory) =
            run(Backend::Explicit, VerifyStrategy::ExplicitBfs, false);
        assert!(
            baseline_advisory.get("incremental_full_misses").is_none(),
            "{name}: no memo counters without the incremental engine"
        );
        for &backend in flow_backends() {
            for strategy in STRATEGIES {
                let (metrics, _) = run(backend, strategy, false);
                assert_eq!(metrics, reference, "{name}: {backend}/{strategy} metrics");
            }
            let (metrics, advisory) = run(backend, VerifyStrategy::Composed, true);
            assert_eq!(metrics, reference, "{name}: {backend}/incremental metrics");
            assert!(
                advisory.get("incremental_full_misses").is_some(),
                "{name}: the incremental engine surfaces its memo counters \
                 as advisory telemetry: {advisory:?}"
            );
            if backend != Backend::Explicit {
                let (_, advisory) = run(backend, VerifyStrategy::Composed, false);
                assert!(
                    advisory.get("bdd_nodes").is_some(),
                    "{name}: symbolic backends report their BDD size: {advisory:?}"
                );
            }
        }
    }
}

/// A wide, CSC-clean controller whose state count is combinatorial:
/// `pairs` independent `x_i+ → y_i+ → x_i- → y_i-` handshakes (4 states
/// each, all codes distinct) plus one free-running output toggle `w`,
/// for `2 · 4^pairs` states.
fn wide_handshakes(pairs: usize) -> Stg {
    let mut b = StgBuilder::new(format!("wide-{pairs}"));
    let sigs: Vec<_> = (0..pairs)
        .map(|i| {
            (
                b.add_signal(format!("x{i}"), SignalKind::Input),
                b.add_signal(format!("y{i}"), SignalKind::Output),
            )
        })
        .collect();
    for (x, y) in sigs {
        let xp = b.add_edge(x, SignalEdge::Rise);
        let yp = b.add_edge(y, SignalEdge::Rise);
        let xm = b.add_edge(x, SignalEdge::Fall);
        let ym = b.add_edge(y, SignalEdge::Fall);
        b.connect(xp, yp);
        b.connect(yp, xm);
        b.connect(xm, ym);
        let p = b.connect(ym, xp);
        b.mark_place(p, 1);
    }
    let w = b.add_signal("w", SignalKind::Output);
    let wp = b.add_edge(w, SignalEdge::Rise);
    let wm = b.add_edge(w, SignalEdge::Fall);
    b.connect(wp, wm);
    let p = b.connect(wm, wp);
    b.mark_place(p, 1);
    b.build()
}

/// The circuit the wide controller implements: `y_i = buffer(x_i)`,
/// `w = ¬w`.
fn wide_circuit(spec: &Stg) -> (Netlist, Vec<NetId>) {
    use boolmin::Expr;
    let mut n = Netlist::new();
    let mut nets: Vec<NetId> = vec![NetId::from_index(0); spec.num_signals()];
    for s in spec.signals() {
        if spec.signal_kind(s) == SignalKind::Input {
            nets[s.index()] = n.add_input(spec.signal_name(s));
        }
    }
    for s in spec.signals() {
        if spec.signal_kind(s) == SignalKind::Input {
            continue;
        }
        let name = spec.signal_name(s).to_owned();
        nets[s.index()] = if name == "w" {
            let own = NetId::from_index(n.num_nets());
            n.add_gate("w", GateKind::Complex(Expr::not(Expr::Var(0))), vec![own])
        } else {
            let x = n.net_by_name(&name.replace('y', "x")).expect("input net");
            n.add_gate(&name, GateKind::Complex(Expr::Var(0)), vec![x])
        };
    }
    (n, nets)
}

/// The probe the tentpole is named for: a resident `SymbolicSet` space
/// with 131 072 states — double the 2^16 materialise limit — verifies
/// set-level through the composed strategy, decoding *zero* states and
/// never materialising a per-state view. Before this engine the
/// pipeline refused any per-state verification on such spaces.
#[test]
fn verification_runs_on_resident_space_above_materialise_limit() {
    let spec = wide_handshakes(8);
    let space = stg::SymbolicSetSpace::build(&spec).expect("resident build");
    assert!(
        StateSpace::num_states(&space) > stg::MATERIALISE_LIMIT,
        "probe space must exceed the materialise limit"
    );
    let (netlist, nets) = wide_circuit(&spec);
    let report = verify_with(
        &spec,
        &space,
        &netlist,
        &nets,
        &VerifyOptions::default(), // composed strategy is the default
    );
    assert!(report.is_speed_independent(), "{}", report.summary());
    assert_eq!(report.states_explored, 2 * 4usize.pow(8));
    assert_eq!(
        space.decoded_states(),
        0,
        "verification must not decode a single state"
    );
    assert!(
        !space.is_materialised(),
        "verification must not materialise the per-state view"
    );
}

/// A flow-level bound hit is reported as a *bounded* run: the failure
/// carries `Violation::StateLimit` and the event log gains the
/// distinguishing `VerificationBounded` entry.
#[test]
fn bounded_verification_is_surfaced_as_an_event() {
    let options = SynthesisOptions {
        verify: VerifyOptions::default().with_bound(10),
        ..Default::default()
    };
    let err = Synthesis::with_options(vme_read_csc(), options)
        .run()
        .expect_err("a 10-state bound cannot cover the composed space");
    match err {
        asyncsynth::PipelineError::CandidatesExhausted { last, events } => {
            match *last {
                asyncsynth::PipelineError::VerificationFailed(report) => {
                    assert!(report.hit_state_limit(), "{}", report.summary());
                }
                other => panic!("unexpected inner error: {other}"),
            }
            assert!(
                events.iter().any(|e| matches!(
                    e,
                    asyncsynth::FlowEvent::VerificationBounded { bound: 10, .. }
                )),
                "bounded event missing from {events:?}"
            );
        }
        other => panic!("unexpected error: {other}"),
    }
}
