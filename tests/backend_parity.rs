//! Backend parity: the explicit, decoding-symbolic and resident-BDD
//! state-space engines must be observationally identical through every
//! pipeline stage — same implementability verdicts, same state counts,
//! same synthesised equations — on all three VME-bus controllers of the
//! paper plus the two-stage micropipeline.

use asyncsynth::{Backend, Synthesis};
use stg::examples::{micropipeline, vme_read, vme_read_csc, vme_read_write};
use stg::properties::check_implementability_with;
use stg::{StateGraph, StateSpace, Stg, SymbolicStateSpace};

/// The non-explicit backends, each compared against the explicit
/// reference.
const SYMBOLIC_BACKENDS: [Backend; 2] = [Backend::Symbolic, Backend::SymbolicSet];

fn specs() -> Vec<(&'static str, Stg)> {
    vec![
        ("vme_read", vme_read()),
        ("vme_read_csc", vme_read_csc()),
        ("vme_read_write", vme_read_write()),
        ("micropipeline2", micropipeline(2)),
    ]
}

#[test]
fn implementability_verdicts_agree() {
    for (name, spec) in specs() {
        let explicit = check_implementability_with(&spec, Backend::Explicit);
        for backend in SYMBOLIC_BACKENDS {
            let symbolic = check_implementability_with(&spec, backend);
            assert_eq!(
                explicit.is_implementable(),
                symbolic.is_implementable(),
                "{name}: implementability verdict"
            );
            assert_eq!(explicit.bounded, symbolic.bounded, "{name}: bounded");
            assert_eq!(
                explicit.consistent, symbolic.consistent,
                "{name}: consistent"
            );
            assert_eq!(
                explicit.unique_state_coding, symbolic.unique_state_coding,
                "{name}: USC"
            );
            assert_eq!(
                explicit.complete_state_coding, symbolic.complete_state_coding,
                "{name}: CSC"
            );
            assert_eq!(
                explicit.csc_conflict_pairs, symbolic.csc_conflict_pairs,
                "{name}: CSC conflict pairs"
            );
            assert_eq!(
                explicit.persistent, symbolic.persistent,
                "{name}: persistent"
            );
            assert_eq!(
                explicit.deadlock_free, symbolic.deadlock_free,
                "{name}: deadlock-free"
            );
            assert_eq!(
                explicit.num_states, symbolic.num_states,
                "{name}: state count"
            );
        }
    }
}

#[test]
fn state_spaces_carry_identical_codes() {
    for (name, spec) in specs() {
        let explicit = StateGraph::build(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        let symbolic = SymbolicStateSpace::build(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        let resident =
            stg::SymbolicSetSpace::build(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            resident.num_markings(),
            StateSpace::num_states(&explicit) as u128,
            "{name}: resident marking count"
        );
        let mut resident_codes: Vec<String> = (0..StateSpace::num_states(&resident))
            .map(|i| StateSpace::plain_code_string(&resident, i))
            .collect();
        resident_codes.sort();
        assert_eq!(
            StateSpace::num_states(&explicit),
            symbolic.num_states(),
            "{name}: state count"
        );
        assert_eq!(
            symbolic.stats().num_markings,
            StateSpace::num_states(&explicit) as u128,
            "{name}: BDD marking count"
        );
        let mut explicit_codes: Vec<String> = (0..StateSpace::num_states(&explicit))
            .map(|i| StateSpace::plain_code_string(&explicit, i))
            .collect();
        let mut symbolic_codes: Vec<String> = (0..symbolic.num_states())
            .map(|i| symbolic.plain_code_string(i))
            .collect();
        explicit_codes.sort();
        symbolic_codes.sort();
        assert_eq!(explicit_codes, symbolic_codes, "{name}: code multiset");
        assert_eq!(
            explicit_codes, resident_codes,
            "{name}: resident code multiset"
        );
        // Initial state parity, not just the multiset.
        assert_eq!(
            StateSpace::plain_code_string(&explicit, 0),
            symbolic.plain_code_string(0),
            "{name}: initial code"
        );
        assert_eq!(
            StateSpace::plain_code_string(&explicit, 0),
            StateSpace::plain_code_string(&resident, 0),
            "{name}: resident initial code"
        );
    }
}

#[test]
fn synthesised_equations_agree() {
    for (name, spec) in specs() {
        let explicit = Synthesis::new(spec.clone())
            .backend(Backend::Explicit)
            .run()
            .unwrap_or_else(|e| panic!("{name} (explicit): {e}"));
        for backend in SYMBOLIC_BACKENDS {
            let symbolic = Synthesis::new(spec.clone())
                .backend(backend)
                .run()
                .unwrap_or_else(|e| panic!("{name} ({backend}): {e}"));
            assert_eq!(
                explicit.equations_text, symbolic.equations_text,
                "{name}: equations"
            );
            assert_eq!(
                explicit.num_states(),
                symbolic.num_states(),
                "{name}: final state count"
            );
            assert_eq!(
                explicit
                    .transformation
                    .as_ref()
                    .map(|t| t.description.clone()),
                symbolic.transformation.map(|t| t.description),
                "{name}: csc transformation"
            );
            assert!(explicit.verification.passed() && symbolic.verification.passed());
        }
    }
}

#[test]
fn unsafe_nets_fail_boundedness_on_both_backends() {
    // Producing into an already-marked place: firing x+ puts a second
    // token on q, so the net is not safe.
    let mut b = stg::StgBuilder::new("unsafe");
    let x = b.add_signal("x", stg::SignalKind::Output);
    let xp = b.add_edge(x, stg::SignalEdge::Rise);
    let xm = b.add_edge(x, stg::SignalEdge::Fall);
    let p = b.add_place("p", 1);
    let q = b.add_place("q", 1);
    b.arc_pt(p, xp);
    b.arc_tp(xp, q);
    b.arc_pt(q, xm);
    b.arc_tp(xm, p);
    let spec = b.build();
    let explicit = check_implementability_with(&spec, Backend::Explicit);
    let symbolic = check_implementability_with(&spec, Backend::Symbolic);
    let resident = check_implementability_with(&spec, Backend::SymbolicSet);
    assert!(!explicit.bounded, "explicit backend flags the unsafe net");
    assert!(!symbolic.bounded, "symbolic backend flags the unsafe net");
    assert!(!resident.bounded, "resident backend flags the unsafe net");
}
