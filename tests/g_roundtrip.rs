//! `.g` round-trip property: for every corpus specification,
//! `parse_g(write_g(spec))` must have the *identical* canonical digest —
//! signals, kinds, explicit initial values, transitions, places,
//! markings all survive the text format. Until this suite the parser
//! was only exercised by the three committed VME files; the corpus
//! pushes dummies, explicit places, instance suffixes (`s+/2`) and the
//! `.initial` directive through it.

use proptest::prelude::*;
use stg::canon::{canonical_text, stg_digest};
use stg::parse::{parse_g, write_g};

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// Every corpus spec round-trips to an identical canonical digest.
#[test]
fn corpus_round_trips_byte_identically() {
    for (family, spec) in corpus::all_specs() {
        let text = write_g(&spec);
        let back = parse_g(&text).unwrap_or_else(|e| {
            panic!("{family}/{}: rewritten .g fails to parse: {e}", spec.name())
        });
        assert_eq!(
            canonical_text(&spec),
            canonical_text(&back),
            "{family}/{}: canonical text drifted through .g",
            spec.name()
        );
        assert_eq!(stg_digest(&spec).to_hex(), stg_digest(&back).to_hex());
    }
}

/// Rewriting is stable up to line order: the re-parsed STG emits
/// exactly the same `.g` lines (transition discovery order may permute
/// whole lines, but never their content — postsets, markings and
/// declarations are reproduced verbatim).
#[test]
fn rewrite_is_stable_up_to_line_order() {
    let sorted_lines = |text: &str| {
        let mut lines: Vec<&str> = text.lines().collect();
        lines.sort_unstable();
        lines.join("\n")
    };
    for (family, spec) in corpus::all_specs() {
        let first = write_g(&spec);
        let again = write_g(&parse_g(&first).expect("parses"));
        assert_eq!(
            sorted_lines(&first),
            sorted_lines(&again),
            "{family}/{} lines drifted",
            spec.name()
        );
    }
}

/// Explicit initial values survive the round trip — including the
/// `token_ring` examples, which set them programmatically and were
/// silently dropped by the writer before the `.initial` directive.
#[test]
fn initial_values_survive() {
    let spec = stg::examples::token_ring(3, 2);
    assert!(spec.initial_values().is_some(), "token rings pin values");
    let text = write_g(&spec);
    assert!(text.contains(".initial "), "writer emits the directive");
    let back = parse_g(&text).expect("parses");
    assert_eq!(spec.initial_values(), back.initial_values());
    assert_eq!(stg_digest(&spec).to_hex(), stg_digest(&back).to_hex());
}

/// Specs *without* explicit values must not grow a `.initial` line (the
/// digest of value-less specs is unchanged by the new directive).
#[test]
fn absent_initial_values_stay_absent() {
    let spec = stg::examples::vme_read();
    assert!(spec.initial_values().is_none());
    let text = write_g(&spec);
    assert!(
        !text.contains(".initial"),
        "no directive for inferred values"
    );
    let back = parse_g(&text).expect("parses");
    assert!(back.initial_values().is_none());
}

/// Malformed `.initial` lines are rejected with a line number.
#[test]
fn malformed_initial_directives_are_rejected() {
    for bad in [
        ".model m\n.outputs x\n.initial x\n.graph\nx+ x-\nx- x+\n.marking { <x-,x+> }\n.end\n",
        ".model m\n.outputs x\n.initial x=2\n.graph\nx+ x-\nx- x+\n.marking { <x-,x+> }\n.end\n",
        ".model m\n.outputs x\n.initial y=1\n.graph\nx+ x-\nx- x+\n.marking { <x-,x+> }\n.end\n",
    ] {
        let err = parse_g(bad).expect_err("bad .initial must fail");
        assert_eq!(err.line, 3, "error points at the .initial line: {err}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Randomised corpus members round-trip too: the parameterised
    /// generators hit arc shapes (nested choice, dummies, shared
    /// places) the fixed grid may miss.
    #[test]
    fn generated_specs_round_trip(
        k in 2usize..7,
        branches in 1usize..5,
        depth in 1usize..4,
        shared in any::<bool>(),
    ) {
        for spec in [
            corpus::generators::handshake_chain(k, &[true, false, false]),
            corpus::generators::dispatcher(branches, !shared),
            corpus::generators::selector_tree(depth),
            corpus::generators::paralleliser(k.clamp(2, 5), shared),
        ] {
            let back = parse_g(&write_g(&spec)).expect("round trip parses");
            prop_assert_eq!(canonical_text(&spec), canonical_text(&back));
        }
    }
}
