//! Dumps corpus specifications in `.g` format.
//!
//! ```text
//! cargo run --example dump_specs                  # list the corpus (family model)
//! cargo run --example dump_specs vme-read         # one model to stdout
//! cargo run --example dump_specs -- --all         # export the corpus to examples/specs/
//! cargo run --example dump_specs -- --all DIR     # export to DIR instead
//! ```
//!
//! The committed files under `examples/specs/` are produced by the
//! `--all` mode; regenerate them after changing `stg::examples`,
//! `corpus::generators` or the family grids.

use std::path::PathBuf;

fn main() {
    let specs = corpus::all_specs();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--all") => {
            let dir = args.get(1).map_or_else(
                || PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/specs"),
                PathBuf::from,
            );
            std::fs::create_dir_all(&dir).expect("create output directory");
            for (_, spec) in &specs {
                let path = dir.join(format!("{}.g", spec.name()));
                std::fs::write(&path, stg::parse::write_g(spec))
                    .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
            }
            println!("wrote {} specs to {}", specs.len(), dir.display());
        }
        Some(name) => match specs.iter().find(|(_, s)| s.name() == name) {
            Some((_, spec)) => print!("{}", stg::parse::write_g(spec)),
            None => {
                eprintln!("unknown model {name:?}; run without arguments to list the corpus");
                std::process::exit(1);
            }
        },
        None => {
            for (family, spec) in &specs {
                println!("{family} {}", spec.name());
            }
        }
    }
}
