//! Dumps the paper's example controllers in `.g` format.
//!
//! ```text
//! cargo run --example dump_specs               # list available models
//! cargo run --example dump_specs vme_read      # one model to stdout
//! ```
//!
//! The committed files under `examples/specs/` are produced by this
//! example; regenerate them after changing `stg::examples`.

type Model = (&'static str, fn() -> stg::Stg);

fn main() {
    let models: &[Model] = &[
        ("vme_read", stg::examples::vme_read),
        ("vme_read_csc", stg::examples::vme_read_csc),
        ("vme_read_write", stg::examples::vme_read_write),
        ("toggle", stg::examples::toggle),
    ];
    let arg = std::env::args().nth(1);
    match arg.as_deref() {
        Some(name) => match models.iter().find(|(n, _)| *n == name) {
            Some((_, build)) => print!("{}", stg::parse::write_g(&build())),
            None => {
                eprintln!("unknown model {name:?}");
                std::process::exit(1);
            }
        },
        None => {
            for (name, _) in models {
                println!("{name}");
            }
        }
    }
}
