//! The full READ+WRITE VME-bus controller of Fig. 5: choice places,
//! structural reductions, state-machine components, invariants and the
//! dense encoding of Fig. 6.
//!
//! Run with `cargo run --example vme_read_write`.

use asyncsynth::{Backend, Synthesis};
use petri::invariant::{dense_encoding, place_invariants, sm_components};
use petri::reduce::reduce_linear;
use petri::symbolic::compare_exact_vs_approximation;
use stg::{examples, StateGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = examples::vme_read_write();
    println!("== specification: {} ==", spec.name());
    print!("{}", stg::parse::write_g(&spec));

    // Choice and merge places (§1.5).
    let choices = petri::classify::choice_places(spec.net());
    let merges = petri::classify::merge_places(spec.net());
    println!("\nchoice places: {:?}", names(spec.net(), &choices));
    println!("merge places:  {:?}", names(spec.net(), &merges));

    let sg = StateGraph::build(&spec)?;
    println!("state graph: {} states", sg.num_states());
    println!("\n{}", stg::properties::check_implementability(&spec));

    // Fig. 6: linear reductions shrink the net drastically.
    let (reduced, stats) = reduce_linear(spec.net().clone());
    println!(
        "\n== after linear reduction: {} places, {} transitions ({} rules applied) ==",
        reduced.num_places(),
        reduced.num_transitions(),
        stats.total()
    );
    print!("{}", reduced.describe());

    // State-machine components and invariants.
    println!("\nplace invariants of the reduced net:");
    for inv in place_invariants(&reduced) {
        println!("  {}", inv.display(&reduced));
    }
    let comps = sm_components(&reduced);
    println!("state-machine components: {}", comps.len());
    for (i, c) in comps.iter().enumerate() {
        let ts: Vec<&str> = c
            .transitions
            .iter()
            .map(|&t| reduced.transition_name(t))
            .collect();
        println!(
            "  SM{i}: {} places, transitions {{{}}}",
            c.places.len(),
            ts.join(", ")
        );
    }

    // Dense encoding (Fig. 6's table) and the exactness of the
    // invariant-based approximation.
    let enc = dense_encoding(&reduced);
    println!(
        "dense encoding: {} boolean variables for {} places",
        enc.num_vars,
        reduced.num_places()
    );
    let (exact, approx, contained) = compare_exact_vs_approximation(&reduced);
    println!(
        "reachable markings: {exact}; invariant approximation: {approx}; contained: {contained}"
    );

    // Synthesise the full controller through the staged pipeline on the
    // symbolic backend: the two CSC conflicts of Fig. 5 are resolved
    // automatically (a concurrency reduction plus a state signal).
    println!("\n== synthesis (symbolic backend) ==");
    let result = Synthesis::new(spec).backend(Backend::Symbolic).run()?;
    if let Some(t) = &result.transformation {
        println!("csc resolution: {t}");
    }
    println!("states: {}", result.num_states());
    println!("equations:\n{}", result.equations_text);
    if let Some(v) = result.verification.report() {
        println!("verification: {}", v.summary());
    }
    Ok(())
}

fn names(net: &petri::PetriNet, ps: &[petri::PlaceId]) -> Vec<String> {
    ps.iter().map(|&p| net.place_name(p).to_owned()).collect()
}
