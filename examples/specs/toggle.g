.model toggle
.inputs a
.outputs x
.graph
a+ x+
x+ a-
a- x-
x- a+
.marking { <x-,a+> }
.end
