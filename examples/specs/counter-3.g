.model counter-3
.inputs c
.outputs b0 b1 b2
.graph
c+ b0+
b0+ c-
c- c+/2
c+/2 b0-
b0- b1+
b1+ c-/2
c-/2 c+/3
c+/3 b0+/2
b0+/2 c-/3
c-/3 c+/4
c+/4 b0-/2
b0-/2 b1-
b1- b2+
b2+ c-/4
c-/4 c+/5
c+/5 b0+/3
b0+/3 c-/5
c-/5 c+/6
c+/6 b0-/3
b0-/3 b1+/2
b1+/2 c-/6
c-/6 c+/7
c+/7 b0+/4
b0+/4 c-/7
c-/7 c+/8
c+/8 b0-/4
b0-/4 b1-/2
b1-/2 b2-
b2- c-/8
c-/8 c+
.marking { <c-/8,c+> }
.end
