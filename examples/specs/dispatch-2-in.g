.model dispatch-2-in
.inputs r0 r1
.outputs a0 a1
.dummy reset
.graph
r0+ a0+
a0+ r0-
r0- a0-
a0- merge
r1+ a1+
a1+ r1-
r1- a1-
a1- merge
reset choice
choice r0+ r1+
merge reset
.marking { choice }
.end
