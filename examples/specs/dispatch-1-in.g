.model dispatch-1-in
.inputs r0
.outputs a0
.dummy reset
.graph
r0+ a0+
a0+ r0-
r0- a0-
a0- merge
reset choice
choice r0+
merge reset
.marking { choice }
.end
