.model chain-5-ioioi
.inputs s0 s2 s4
.outputs s1 s3
.graph
s0+ s1+
s1+ s2+
s2+ s3+
s3+ s4+
s4+ s0-
s0- s1-
s1- s2-
s2- s3-
s3- s4-
s4- s0+
.marking { <s4-,s0+> }
.end
