.model selector-1
.inputs s0 s1
.outputs a1 a0
.graph
s0+ d0
s0- root
s1+ d1
s1- root
a1+ a1-
a1- u1
a0+ a0-
a0- u0
root s0+ s1+
d0 a0+
u0 s0-
d1 a1+
u1 s1-
.marking { root }
.end
