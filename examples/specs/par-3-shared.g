.model par-3-shared
.inputs r
.outputs d w0 w1 w2
.dummy fork join
.graph
r+ fork
r- d-
d+ r-
d- r+
fork w0+ w1+ w2+
join d+
w0+ w0-
w0- join res
w1+ w1-
w1- join res
w2+ w2-
w2- join res
res w0+ w1+ w2+
.marking { <d-,r+> res }
.end
