.model par-3-free
.inputs r
.outputs d w0 w1 w2
.dummy fork join
.graph
r+ fork
r- d-
d+ r-
d- r+
fork w0+ w1+ w2+
join d+
w0+ w0-
w0- join
w1+ w1-
w1- join
w2+ w2-
w2- join
.marking { <d-,r+> }
.end
