.model seq
.inputs r
.outputs a x y
.graph
r+ x+
x+ x-
x- y+
y+ y-
y- a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.end
