.model arbiter-4
.inputs r0 r1 r2 r3
.outputs g0 g1 g2 g3
.graph
r0+ g0+
g0+ r0-
r0- g0-
g0- idle0 mutex
r1+ g1+
g1+ r1-
r1- g1-
g1- idle1 mutex
r2+ g2+
g2+ r2-
r2- g2-
g2- idle2 mutex
r3+ g3+
g3+ r3-
r3- g3-
g3- idle3 mutex
mutex g0+ g1+ g2+ g3+
idle0 r0+
idle1 r1+
idle2 r2+
idle3 r3+
.marking { idle0 idle1 idle2 idle3 mutex }
.end
