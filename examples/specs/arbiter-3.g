.model arbiter-3
.inputs r0 r1 r2
.outputs g0 g1 g2
.graph
r0+ g0+
g0+ r0-
r0- g0-
g0- idle0 mutex
r1+ g1+
g1+ r1-
r1- g1-
g1- idle1 mutex
r2+ g2+
g2+ r2-
r2- g2-
g2- idle2 mutex
mutex g0+ g1+ g2+
idle0 r0+
idle1 r1+
idle2 r2+
.marking { idle0 idle1 idle2 mutex }
.end
