.model arbiter-2
.inputs r0 r1
.outputs g0 g1
.graph
r0+ g0+
g0+ r0-
r0- g0-
g0- idle0 mutex
r1+ g1+
g1+ r1-
r1- g1-
g1- idle1 mutex
mutex g0+ g1+
idle0 r0+
idle1 r1+
.marking { idle0 idle1 mutex }
.end
