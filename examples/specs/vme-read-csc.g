.model vme-read-csc
.inputs DSr LDTACK
.outputs DTACK LDS D
.internal csc0
.graph
DSr+ csc0+
DSr- csc0-
DTACK+ DSr-
DTACK- DSr+
LDTACK+ D+
LDTACK- csc0+
LDS+ LDTACK+
LDS- LDTACK-
D+ DTACK+
D- DTACK- LDS-
csc0+ LDS+
csc0- D-
.marking { <DTACK-,DSr+> <LDTACK-,csc0+> }
.end
