.model dispatch-3-out
.outputs r0 a0 r1 a1 r2 a2
.dummy reset
.graph
r0+ a0+
a0+ r0-
r0- a0-
a0- merge
r1+ a1+
a1+ r1-
r1- a1-
a1- merge
r2+ a2+
a2+ r2-
r2- a2-
a2- merge
reset choice
choice r0+ r1+ r2+
merge reset
.marking { choice }
.end
