.model counter-2
.inputs c
.outputs b0 b1
.graph
c+ b0+
b0+ c-
c- c+/2
c+/2 b0-
b0- b1+
b1+ c-/2
c-/2 c+/3
c+/3 b0+/2
b0+/2 c-/3
c-/3 c+/4
c+/4 b0-/2
b0-/2 b1-
b1- c-/4
c-/4 c+
.marking { <c-/4,c+> }
.end
