.model chain-3-ooo
.outputs s0 s1 s2
.graph
s0+ s1+
s1+ s2+
s2+ s0-
s0- s1-
s1- s2-
s2- s0+
.marking { <s2-,s0+> }
.end
