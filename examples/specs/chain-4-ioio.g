.model chain-4-ioio
.inputs s0 s2
.outputs s1 s3
.graph
s0+ s1+
s1+ s2+
s2+ s3+
s3+ s0-
s0- s1-
s1- s2-
s2- s3-
s3- s0+
.marking { <s3-,s0+> }
.end
