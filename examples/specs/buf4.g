.model buf4
.inputs ri ao
.outputs ro ai
.initial ri=1 ao=0 ro=1 ai=0
.graph
ri+ ro+
ro+ ao+
ao+ ai+
ai+ ri-
ri- ro-
ro- ao-
ao- ai-
ai- ri+
.marking { <ro+,ao+> }
.end
