.model chain-5-ooooo
.outputs s0 s1 s2 s3 s4
.graph
s0+ s1+
s1+ s2+
s2+ s3+
s3+ s4+
s4+ s0-
s0- s1-
s1- s2-
s2- s3-
s3- s4-
s4- s0+
.marking { <s4-,s0+> }
.end
