.model selector-2
.inputs s0 s1 s10 s11 s00 s01
.outputs a11 a10 a01 a00
.graph
s0+ d0
s0- root
s1+ d1
s1- root
s10+ d10
s10- u1
s11+ d11
s11- u1
a11+ a11-
a11- u11
a10+ a10-
a10- u10
s00+ d00
s00- u0
s01+ d01
s01- u0
a01+ a01-
a01- u01
a00+ a00-
a00- u00
root s0+ s1+
d0 s00+ s01+
u0 s0-
d1 s10+ s11+
u1 s1-
d10 a10+
u10 s10-
d11 a11+
u11 s11-
d00 a00+
u00 s00-
d01 a01+
u01 s01-
.marking { root }
.end
