.model token-ring-3-3
.outputs s0 s1 s2
.initial s0=1 s1=1 s2=0
.graph
s0+ f0 e5
s0- e0 f1
s1+ e1 f2
s1- e2 f3
s2+ e3 f4
s2- e4 f5
f0 s0-
e0 s0+
f1 s1+
e1 s0-
f2 s1-
e2 s1+
f3 s2+
e3 s1-
f4 s2-
e4 s2+
f5 s0+
e5 s2-
.marking { e3 e4 e5 f0 f1 f2 }
.end
