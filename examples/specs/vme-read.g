.model vme-read
.inputs DSr LDTACK
.outputs DTACK LDS D
.graph
DSr+ LDS+
DSr- D-
DTACK+ DSr-
DTACK- DSr+
LDTACK+ D+
LDTACK- LDS+
LDS+ LDTACK+
LDS- LDTACK-
D+ DTACK+
D- DTACK- LDS-
.marking { <DTACK-,DSr+> <LDTACK-,LDS+> }
.end
