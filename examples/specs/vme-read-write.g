.model vme-read-write
.inputs DSr DSw LDTACK
.outputs DTACK LDS D
.graph
DSr+ LDS+
DSr- D-
LDS+ LDTACK+
LDTACK+ D+
D+ DTACK+
DTACK+ DSr-
D- p1 p2
DSw+ D+/2
DSw- p1
D+/2 LDS+/2
LDS+/2 LDTACK+/2
LDTACK+/2 D-/2
D-/2 DTACK+/2 p2
DTACK+/2 DSw-
LDS- LDTACK-
LDTACK- p3
DTACK- p0
p1 DTACK-
p2 LDS-
p0 DSr+ DSw+
p3 LDS+ LDS+/2
.marking { p0 p3 }
.end
