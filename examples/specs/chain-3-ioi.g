.model chain-3-ioi
.inputs s0 s2
.outputs s1
.graph
s0+ s1+
s1+ s2+
s2+ s0-
s0- s1-
s1- s2-
s2- s0+
.marking { <s2-,s0+> }
.end
