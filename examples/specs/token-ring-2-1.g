.model token-ring-2-1
.outputs s0 s1
.initial s0=1 s1=0
.graph
s0+ f0 e3
s0- e0 f1
s1+ e1 f2
s1- e2 f3
f0 s0-
e0 s0+
f1 s1+
e1 s0-
f2 s1-
e2 s1+
f3 s0+
e3 s1-
.marking { e1 e2 e3 f0 }
.end
