.model chain-2-oo
.outputs s0 s1
.graph
s0+ s1+
s1+ s0-
s0- s1-
s1- s0+
.marking { <s1-,s0+> }
.end
