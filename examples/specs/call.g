.model call
.inputs r1 r2
.outputs a1 a2 s
.graph
r1+ s+
r2+ s+/2
s+ s-
s- a1+
a1+ r1-
r1- a1-
a1- free
s+/2 s-/2
s-/2 a2+
a2+ r2-
r2- a2-
a2- free
free r1+ r2+
.marking { free }
.end
