//! Scalable micropipeline controllers: synthesise every stage depth
//! concurrently in one `run_batch` call, verify, and measure throughput
//! by simulation — the "high-performance computing" application domain
//! of §7. A decomposed (two-input library) synthesis of the VME READ
//! controller rounds out the tour.
//!
//! Run with `cargo run --release --example pipeline_controller`.

use asyncsynth::{run_batch, Architecture, Synthesis, SynthesisOptions};
use sim::{SimConfig, Simulator};
use stg::examples;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let specs: Vec<stg::Stg> = (1..=3).map(examples::micropipeline).collect();

    // Synthesise every pipeline depth concurrently (complex-gate
    // architecture; micropipeline CSC conflicts resolve by concurrency
    // reduction).
    let options = SynthesisOptions::default();
    for (spec, outcome) in specs.iter().zip(run_batch(&specs, &options)) {
        match outcome {
            Ok(result) => {
                println!("== {} ({} states) ==", spec.name(), result.num_states());
                if let Some(t) = &result.transformation {
                    println!("csc resolution: {t}");
                }
                println!("equations:\n{}", result.equations_text);
                println!(
                    "netlist: {} gates, literal cost {}",
                    result.circuit.netlist().num_gates(),
                    result.circuit.netlist().literal_cost()
                );
                if let Some(v) = result.verification.report() {
                    println!("verification: {}", v.summary());
                }
                // Throughput by simulation.
                let nets = result.circuit.signal_nets(&result.spec);
                let mut simulator = Simulator::new(
                    &result.spec,
                    result.state_space(),
                    result.circuit.netlist().clone(),
                    nets,
                    SimConfig::default(),
                );
                let stats = simulator.run(20_000.0);
                println!(
                    "simulation: {} cycles, avg cycle time {:.2}, {} glitches\n",
                    stats.cycles,
                    stats.avg_cycle_time.unwrap_or(f64::NAN),
                    stats.glitches
                );
            }
            Err(e) => println!("== {} == flow failed: {e}\n", spec.name()),
        }
    }

    // Fan-in-bounded decomposition (Fig. 9) on the READ controller: the
    // two-input library fits after hazard repair by resubstitution.
    println!("== vme-read, decomposed into the two-input library ==");
    let result = Synthesis::new(examples::vme_read())
        .architecture(Architecture::Decomposed)
        .run()?;
    println!(
        "netlist: {} gates, max fan-in {}, literal cost {}",
        result.circuit.netlist().num_gates(),
        result.circuit.netlist().max_fanin(),
        result.circuit.netlist().literal_cost()
    );
    if let Some(v) = result.verification.report() {
        println!("verification: {}", v.summary());
    }
    Ok(())
}
