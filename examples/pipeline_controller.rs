//! A scalable micropipeline controller: synthesise each stage, decompose
//! into a two-input library, verify, and measure throughput by simulation
//! — the "high-performance computing" application domain of §7.
//!
//! Run with `cargo run --release --example pipeline_controller`.

use asyncsynth::flow::{run_flow, Architecture, FlowOptions};
use sim::{SimConfig, Simulator};
use stg::{examples, StateGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for n in 1..=3 {
        let spec = examples::micropipeline(n);
        let sg = StateGraph::build(&spec)?;
        println!("== {} ({} states) ==", spec.name(), sg.num_states());

        // Synthesise with the decomposed (two-input library) architecture.
        let options = FlowOptions {
            architecture: Architecture::Decomposed,
            ..FlowOptions::default()
        };
        match run_flow(&spec, &options) {
            Ok(result) => {
                println!("equations:\n{}", result.equations_text);
                println!(
                    "netlist: {} gates, max fan-in {}, literal cost {}",
                    result.circuit.netlist().num_gates(),
                    result.circuit.netlist().max_fanin(),
                    result.circuit.netlist().literal_cost()
                );
                if let Some(v) = &result.verification {
                    println!("verification: {}", v.summary());
                }
                // Throughput by simulation.
                let nets = result.circuit.signal_nets(&result.spec);
                let mut simulator = Simulator::new(
                    &result.spec,
                    &result.state_graph,
                    result.circuit.netlist().clone(),
                    nets,
                    SimConfig::default(),
                );
                let stats = simulator.run(20_000.0);
                println!(
                    "simulation: {} cycles, avg cycle time {:.2}, {} glitches\n",
                    stats.cycles,
                    stats.avg_cycle_time.unwrap_or(f64::NAN),
                    stats.glitches
                );
            }
            Err(e) => println!("flow failed: {e}\n"),
        }
    }
    Ok(())
}
