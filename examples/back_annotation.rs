//! Back-annotation (§4, Fig. 10): extract a Petri net from a state graph
//! via the theory of regions, and verify it regenerates the behaviour.
//!
//! The state space feeding the extraction is built with the *symbolic*
//! (BDD) backend — the regions algorithm consumes the `StateSpace` trait
//! and cannot tell the engines apart.
//!
//! Run with `cargo run --example back_annotation` (release mode
//! recommended: region enumeration is exhaustive).

use petri::reach::ReachabilityGraph;
use regions::synthesize_net;
use stg::{examples, StateSpace, SymbolicStateSpace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Take the CSC-resolved READ controller (Fig. 7's 16-state SG) and
    // rebuild an STG from the raw state space alone.
    let spec = examples::vme_read_csc();
    let sg = SymbolicStateSpace::build(&spec)?;
    println!(
        "state space: {} states (symbolic: {} BDD iterations, {} nodes)",
        sg.num_states(),
        sg.stats().iterations,
        sg.stats().bdd_nodes
    );

    let ts = sg.ts().map_labels(|&t| spec.label_string(t));
    let extracted = synthesize_net(&ts)?;
    println!(
        "extracted net: {} places (minimal regions), {} transitions",
        extracted.net.num_places(),
        extracted.net.num_transitions()
    );
    println!(
        "trace-equivalent to the state graph: {}",
        extracted.trace_equivalent
    );

    print!("{}", extracted.net.describe());

    // The extracted net regenerates exactly the same state space.
    let rg = ReachabilityGraph::build(&extracted.net)?;
    println!(
        "\nregenerated reachability graph: {} states",
        rg.num_states()
    );

    // Regions correspond to places: show a few.
    println!("\nfirst regions (place ↦ member states):");
    for (i, r) in extracted.regions.iter().take(5).enumerate() {
        println!("  r{i}: {:?}", r.states);
    }
    Ok(())
}
