//! Timing optimisation (§5, Fig. 11): relative-timing assumptions shrink
//! the state graph, remove the need for a state signal, and enable lazy
//! transitions — and separation analysis discharges the assumptions.
//!
//! Run with `cargo run --example timing_optimization`.

use asyncsynth::Synthesis;
use stg::{examples, StateGraph};
use timing::{apply_assumptions, cycle_time, max_separation, SeparationQuery};
use timing::{retime_trigger, TimedMarkedGraph, TimingAssumption};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = examples::vme_read();

    // Baseline: the untimed pipeline needs an extra state signal (csc0).
    let baseline = Synthesis::new(spec.clone()).run()?;
    println!("== baseline (untimed) ==");
    match &baseline.transformation {
        Some(t) => println!("csc: {t}"),
        None => println!("csc: none"),
    }
    println!("states: {}", baseline.num_states());
    println!("{}\n", baseline.equations_text);

    // Fig. 11a: assume sep(LDTACK-, DSr+) < 0 — the device handshake
    // resets faster than the next bus request arrives.
    let timed = apply_assumptions(&spec, &[TimingAssumption::new("LDTACK-", "DSr+")])?;
    let sg = StateGraph::build(&timed)?;
    println!("== with sep(LDTACK-, DSr+) < 0 (Fig. 11a) ==");
    println!("states: {} (was 14)", sg.num_states());
    println!(
        "CSC holds without a state signal: {}",
        stg::encoding::has_csc(&timed, &sg)
    );
    let optimized = Synthesis::new(timed).run()?;
    println!("equations:\n{}\n", optimized.equations_text);

    // Fig. 11b: lazy LDS- — enabled from DSr- instead of D-, relying on
    // sep(D-, LDS-) < 0 at the physical level.
    let lazy = retime_trigger(&spec, "LDS-", "D-", "DSr-")?;
    let lazy_sg = StateGraph::build(&lazy)?;
    println!("== lazy LDS- (Fig. 11b) ==");
    println!("states: {}", lazy_sg.num_states());

    // Discharge the assumptions with separation analysis on a timed
    // model: device-side transitions fast, bus-side slow.
    let net = spec.net().clone();
    let mut delays = vec![(1.0, 2.0); net.num_transitions()];
    let dsr_p = net.transition_by_name("DSr+").unwrap();
    delays[dsr_p.index()] = (20.0, 30.0); // the bus master is slow
    let tmg = TimedMarkedGraph::new(net, delays);
    let ldtack_m = tmg.net().transition_by_name("LDTACK-").unwrap();
    let dsr_p = tmg.net().transition_by_name("DSr+").unwrap();
    let sep = max_separation(
        &tmg,
        SeparationQuery {
            from: ldtack_m,
            to: dsr_p,
            offset: 1,
        },
        16,
    );
    println!("\n== separation analysis ==");
    println!("sep(LDTACK-, DSr+_next) = {sep:.1}  (< 0 discharges Fig. 11a)");
    println!("cycle time of the READ handshake: {:.1}", cycle_time(&tmg));
    Ok(())
}
