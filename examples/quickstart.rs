//! Quickstart: specify the VME-bus READ controller (Fig. 3 of the paper),
//! inspect it, synthesise a speed-independent circuit, and print the
//! waveforms, equations and netlist.
//!
//! Run with `cargo run --example quickstart`.

use asyncsynth::flow::{run_flow, FlowOptions};
use stg::{examples, StateGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The specification: a Signal Transition Graph built with the
    //    builder API (see `stg::examples::vme_read` for the construction).
    let spec = examples::vme_read();
    println!("== specification: {} ==", spec.name());
    print!("{}", stg::parse::write_g(&spec));

    // 2. The state graph (Fig. 4): 14 states, binary-coded.
    let sg = StateGraph::build(&spec)?;
    println!("\n== state graph: {} states ==", sg.num_states());
    for i in 0..sg.num_states() {
        println!("  s{i:<2} {}  {}", sg.code_string(&spec, i), sg.state(i).marking);
    }

    // 3. One full READ cycle as waveforms (Fig. 2).
    let cycle = stg::waveform::canonical_cycle(&sg, 100);
    println!("\n== waveforms ==");
    println!("trace: {}", stg::waveform::render_trace_header(&spec, &cycle));
    print!("{}", stg::waveform::render_waveforms(&spec, &sg, &cycle));

    // 4. Property analysis (§2.1): the READ cycle lacks CSC.
    println!("\n== implementability ==");
    println!("{}", stg::properties::check_implementability(&spec));

    // 5. The flow resolves CSC automatically (inserting csc0, Fig. 7) and
    //    synthesises the complex-gate circuit of §3.2.
    let result = run_flow(&spec, &FlowOptions::default())?;
    println!("\n== synthesis ==");
    if let Some(t) = &result.csc_transformation {
        println!("csc resolution: {t}");
    }
    println!("equations:\n{}", result.equations_text);
    println!("\nnetlist:\n{}", result.circuit.netlist().describe());
    if let Some(v) = &result.verification {
        println!("verification: {}", v.summary());
    }
    Ok(())
}
