//! Quickstart: specify the VME-bus READ controller (Fig. 3 of the paper),
//! inspect it, synthesise a speed-independent circuit with the staged
//! pipeline, and print the waveforms, equations and netlist.
//!
//! Run with `cargo run --example quickstart`.

use asyncsynth::{Backend, Synthesis};
use stg::examples;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The specification: a Signal Transition Graph built with the
    //    builder API (see `stg::examples::vme_read` for the construction).
    let spec = examples::vme_read();
    println!("== specification: {} ==", spec.name());
    print!("{}", stg::parse::write_g(&spec));

    // 2. Stage 1 — property checking (§2.1). The chosen backend builds
    //    the state space (Fig. 4: 14 states, binary-coded); the READ
    //    cycle passes everything except CSC.
    let checked = Synthesis::new(spec.clone())
        .backend(Backend::Explicit)
        .check()?;
    let sg = checked.state_space();
    println!(
        "\n== state space ({}): {} states ==",
        sg.backend(),
        sg.num_states()
    );
    for i in 0..sg.num_states() {
        println!("  s{i:<2} {}  {}", sg.code_string(&spec, i), sg.marking(i));
    }
    println!("\n== implementability ==");
    println!("{}", checked.report());

    // 3. One full READ cycle as waveforms (Fig. 2).
    let cycle = stg::waveform::canonical_cycle(sg, 100);
    println!("\n== waveforms ==");
    println!(
        "trace: {}",
        stg::waveform::render_trace_header(&spec, &cycle)
    );
    print!("{}", stg::waveform::render_waveforms(&spec, sg, &cycle));

    // 4. Stages 2–4 — the pipeline resolves CSC automatically (inserting
    //    a state signal, Fig. 7), synthesises the complex-gate circuit of
    //    §3.2 and verifies it speed-independent.
    let resolved = checked.resolve_csc()?;
    println!("\n== csc candidates: {} ==", resolved.candidates().len());
    for c in resolved.candidates().iter().take(3) {
        if let Some(t) = &c.transformation {
            println!("  {t}");
        }
    }
    let result = resolved.synthesize()?.verify()?;
    println!("\n== synthesis ==");
    if let Some(t) = &result.transformation {
        println!("csc resolution: {t}");
    }
    println!("equations:\n{}", result.equations_text);
    println!("\nnetlist:\n{}", result.circuit.netlist().describe());
    if let Some(v) = result.verification.report() {
        println!("verification: {}", v.summary());
    }

    // 5. The structured event log tells the whole story.
    println!("\n== events ==");
    for e in result.events() {
        println!("  {e}");
    }
    Ok(())
}
