//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds without network access, so this vendored shim
//! implements the subset of proptest's API used by the workspace's
//! property tests: the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_recursive`, [`prop_oneof!`], `collection::vec`, `any::<bool>()`,
//! numeric range strategies and tuple strategies.
//!
//! Differences from real proptest, by design:
//!
//! * generation is deterministic per test (the RNG is seeded from the test
//!   name), so failures are reproducible without a persistence file;
//! * there is no shrinking — a failing case reports its inputs via the
//!   standard panic message only;
//! * `prop_assert*` are plain assertions and `prop_assume!` skips the
//!   current case.

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic RNG used by the test runner (splitmix64).
pub mod test_runner {
    /// The runner's deterministic random generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name, so every test gets a
        /// stable, independent stream.
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `usize` below `n` (`n > 0`).
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::sync::Arc;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy behind a cheaply clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let inner = self;
            BoxedStrategy(Arc::new(move |rng: &mut TestRng| inner.generate(rng)))
        }

        /// Builds a recursive strategy: `self` is the leaf case, `branch`
        /// produces the recursive case from a strategy for the nested
        /// values. `depth` bounds the recursion; the size hints are
        /// accepted for API compatibility and ignored.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let deeper = branch(strat).boxed();
                strat = Union::new(vec![leaf.clone(), deeper]).boxed();
            }
            strat
        }
    }

    /// A mapped strategy (see [`Strategy::prop_map`]).
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased, clonable strategy handle.
    pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// A uniform choice among alternative strategies (see [`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds the union; `options` must be non-empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// A strategy always yielding clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A length specification: exact or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// A strategy for vectors of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths in `size` (a `usize` or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_exclusive - self.size.min;
            let len = self.size.min + if span == 0 { 0 } else { rng.below(span) };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` support for types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: strategy::Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// A canonical full-range strategy for `T` (see [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// The strategy behind `any::<bool>()`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl strategy::Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty => $name:ident),*) => {$(
        /// The strategy behind `any` for the corresponding integer type.
        #[derive(Debug, Clone, Copy)]
        pub struct $name;

        impl strategy::Strategy for $name {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = $name;
            fn arbitrary() -> $name {
                $name
            }
        }
    )*};
}

impl_arbitrary_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64, usize => AnyUsize);

/// The usual glob import for tests.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::TestRng;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, ProptestConfig,
    };
}

/// Declares property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for _case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    { $body }
                }
            }
        )*
    };
}

/// Asserts a condition within a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
