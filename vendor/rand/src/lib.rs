//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds without network access, so this vendored shim
//! provides the tiny subset of the `rand 0.9` API the `sim` crate uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::random_range`] over primitive ranges. The generator is
//! xoshiro256** seeded through splitmix64 — deterministic, fast, and good
//! enough for randomised delay sampling (it is *not* cryptographic).

use std::ops::Range;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface, mirroring the subset of `rand::Rng` in use.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open).
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// A uniform boolean with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample in `[range.start, range.end)`.
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty sample range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize);

/// Generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (the shim's "standard" RNG).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let x = a.random_range(1.5..2.5);
            assert!((1.5..2.5).contains(&x));
            let n = a.random_range(3usize..17);
            assert!((3..17).contains(&n));
        }
    }
}
