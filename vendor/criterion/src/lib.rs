//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds without network access, so this vendored shim
//! implements the subset of criterion's API the `bench` crate uses:
//! benchmark groups, [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! simple wall-clock median over `sample_size` samples — adequate for
//! relative comparisons, without criterion's statistics.
//!
//! Benchmarks run one iteration per sample when invoked via `cargo test`
//! (so the targets stay compiled and smoke-tested) and the configured
//! sample count under `cargo bench`.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque blackbox re-export, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// A benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Timing driver handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Vec<Duration>,
    iters: u64,
}

impl Bencher {
    /// Times one invocation of `routine` per configured sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let start = Instant::now();
            let out = routine();
            self.elapsed.push(start.elapsed());
            drop(std_black_box(out));
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `routine` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            elapsed: Vec::new(),
            iters: self.samples() as u64,
        };
        routine(&mut b, input);
        self.report(&id.name, &b.elapsed);
        self
    }

    /// Benchmarks a plain routine.
    pub fn bench_function<R>(&mut self, id: impl Display, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed: Vec::new(),
            iters: self.samples() as u64,
        };
        routine(&mut b);
        self.report(&id.to_string(), &b.elapsed);
        self
    }

    /// Ends the group (reports were emitted per benchmark).
    pub fn finish(&mut self) {}

    fn samples(&self) -> usize {
        if self.criterion.smoke_only {
            1
        } else {
            self.sample_size.max(1)
        }
    }

    fn report(&self, name: &str, samples: &[Duration]) {
        if samples.is_empty() {
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let total: Duration = sorted.iter().sum();
        let mean = total / u32::try_from(sorted.len()).unwrap_or(1);
        println!(
            "{}/{name}: median {median:?}, mean {mean:?} over {} sample(s)",
            self.name,
            sorted.len()
        );
    }
}

/// Top-level benchmark context, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    smoke_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test` the harness passes `--test`; run a single
        // iteration per benchmark so the suite stays fast.
        let smoke_only = std::env::args().any(|a| a == "--test");
        Criterion { smoke_only }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
